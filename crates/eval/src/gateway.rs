//! Shared logic of the `camal_gateway` binary and `run_all`'s gateway
//! smoke gate: train-a-checkpoint, serve-it-over-HTTP, hammer-it-with-
//! loadgen, and the demo that does all three in one process and proves the
//! micro-batching win.
//!
//! The gateway itself lives in [`nilm_serve`]; this module provides the
//! operator-facing glue: zoo/checkpoint handling, synthetic request
//! bodies, single-shot HTTP helpers, loadgen report JSON and the
//! end-to-end demo with its two gates (byte-identical responses vs a
//! direct [`camal::stream::serve`] run, and concurrent loadgen beating the
//! same workload issued sequentially).

use crate::json::JsonValue;
use crate::runner::Scale;
use crate::serving::{self, arg_usize, arg_value, SERVE_APPLIANCE};
use camal::registry::{ModelKey, ModelRegistry};
use camal::stream::{serve, HouseholdSeries, StreamConfig};
use nilm_data::series::TimeSeries;
use nilm_data::templates::{template, DatasetId};
use nilm_serve::http::read_response;
use nilm_serve::protocol::{localize_request, localize_response, Detail, HouseholdRow};
use nilm_serve::{
    run_loadgen, run_loadgen_with, Gateway, GatewayConfig, LoadgenOptions, LoadgenReport,
};
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

/// The demo/CI gateway model: the Refit kettle case (same as
/// `camal_serve`).
pub fn gateway_key() -> ModelKey {
    ModelKey::new(DatasetId::Refit, SERVE_APPLIANCE)
}

/// Checkpoint directory the gateway serves from (`--zoo` override).
pub fn gateway_zoo_dir(args: &[String]) -> PathBuf {
    arg_value(args, "--zoo")
        .map(PathBuf::from)
        .unwrap_or_else(|| crate::results_dir(args).join("gateway_zoo"))
}

/// Builds the [`GatewayConfig`] from CLI flags (`--addr`, `--queue`,
/// `--max-coalesce`, `--batch`, `--deadline-ms`).
pub fn gateway_config(args: &[String]) -> GatewayConfig {
    let mut cfg = GatewayConfig::default();
    if let Some(addr) = arg_value(args, "--addr") {
        cfg.addr = addr;
    }
    cfg.queue_capacity = arg_usize(args, "--queue", cfg.queue_capacity);
    cfg.max_coalesce = arg_usize(args, "--max-coalesce", cfg.max_coalesce);
    cfg.batch_windows = arg_usize(args, "--batch", cfg.batch_windows);
    cfg.deadline =
        Duration::from_millis(
            arg_usize(args, "--deadline-ms", cfg.deadline.as_millis() as usize) as u64
        );
    cfg
}

/// A deterministic synthetic household of `windows × window` samples at
/// `step_s`: square kettle-like plateaus over base load plus noise.
pub fn synth_household(windows: usize, window: usize, step_s: u32, seed: u64) -> HouseholdSeries {
    let mut rng = nilm_tensor::init::rng(seed);
    let n = windows * window;
    let mut values = Vec::with_capacity(n);
    for t in 0..n {
        let plateau = (t / 11) % 4 == (seed % 3) as usize;
        let base = if plateau { 2050.0 } else { 145.0 };
        values.push(base + nilm_tensor::init::randn(&mut rng).abs() * 22.0);
    }
    HouseholdSeries { id: format!("house-{seed}"), series: TimeSeries::new(values, step_s) }
}

/// The loadgen request body: `houses` synthetic households of
/// `windows_per_house` model windows each, against `keys`.
pub fn request_body(
    keys: &[ModelKey],
    houses: usize,
    windows_per_house: usize,
    window: usize,
    step_s: u32,
    seed: u64,
    detail: Detail,
) -> String {
    let households: Vec<HouseholdSeries> = (0..houses)
        .map(|i| synth_household(windows_per_house, window, step_s, seed + i as u64))
        .collect();
    localize_request(keys, &households, detail).to_compact()
}

/// One blocking GET against the gateway; panics on transport errors (these
/// helpers drive demos and CI gates, where failing loudly is the point).
pub fn http_get(addr: &str, path: &str) -> (u16, String) {
    let stream = TcpStream::connect(addr)
        .unwrap_or_else(|e| panic!("cannot connect to gateway at {addr}: {e}"));
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("set timeout");
    let request = format!("GET {path} HTTP/1.1\r\nHost: gateway\r\nConnection: close\r\n\r\n");
    (&stream).write_all(request.as_bytes()).expect("send request");
    let mut reader = BufReader::new(&stream);
    let response = read_response(&mut reader).expect("read response");
    (response.status, response.body_str().expect("UTF-8 body").to_string())
}

/// One blocking POST against the gateway.
pub fn http_post(addr: &str, path: &str, body: &str) -> (u16, String) {
    let stream = TcpStream::connect(addr)
        .unwrap_or_else(|e| panic!("cannot connect to gateway at {addr}: {e}"));
    stream.set_read_timeout(Some(Duration::from_secs(60))).expect("set timeout");
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: gateway\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    (&stream).write_all(request.as_bytes()).expect("send request");
    let mut reader = BufReader::new(&stream);
    let response = read_response(&mut reader).expect("read response");
    (response.status, response.body_str().expect("UTF-8 body").to_string())
}

/// A [`LoadgenReport`] as JSON.
pub fn loadgen_json(r: &LoadgenReport) -> JsonValue {
    let by_status: std::collections::BTreeMap<String, JsonValue> = r
        .by_status
        .iter()
        .map(|(status, count)| (status.to_string(), JsonValue::Number(*count as f64)))
        .collect();
    JsonValue::object([
        ("connections", JsonValue::Number(r.connections as f64)),
        ("ok", JsonValue::Number(r.ok as f64)),
        ("errors", JsonValue::Number(r.errors as f64)),
        ("by_status", JsonValue::Object(by_status)),
        ("missing_retry_after", JsonValue::Number(r.missing_retry_after as f64)),
        ("elapsed_s", JsonValue::Number(r.elapsed_s)),
        ("requests_per_second", JsonValue::Number(r.requests_per_second)),
        ("p50_ms", JsonValue::Number(r.p50_ms)),
        ("p99_ms", JsonValue::Number(r.p99_ms)),
        ("mean_ms", JsonValue::Number(r.mean_ms)),
        ("body_bytes", JsonValue::Number(r.body_bytes as f64)),
    ])
}

/// The full latency distribution of a run as JSON: summary statistics plus
/// every nonzero HDR bucket (`le_ms` upper edge → cumulative-free count),
/// so offline tooling can compute any quantile without the raw samples.
pub fn latency_histogram_json(r: &LoadgenReport) -> JsonValue {
    let h = &r.latency;
    let buckets: Vec<JsonValue> = h
        .nonzero_buckets()
        .map(|(le_ms, count)| {
            JsonValue::object([
                ("le_ms", JsonValue::Number(le_ms)),
                ("count", JsonValue::Number(count as f64)),
            ])
        })
        .collect();
    JsonValue::object([
        ("count", JsonValue::Number(h.count() as f64)),
        ("mean_ms", JsonValue::Number(h.mean_ms())),
        ("min_ms", JsonValue::Number(h.min_ms())),
        ("max_ms", JsonValue::Number(h.max_ms())),
        ("p50_ms", JsonValue::Number(h.quantile_ms(0.50))),
        ("p90_ms", JsonValue::Number(h.quantile_ms(0.90))),
        ("p99_ms", JsonValue::Number(h.quantile_ms(0.99))),
        ("p999_ms", JsonValue::Number(h.quantile_ms(0.999))),
        ("buckets", JsonValue::Array(buckets)),
    ])
}

fn print_report(label: &str, r: &LoadgenReport) {
    println!(
        "  {label:<12} {:2} conn  {:5} ok {:3} err  {:7.1} req/s  p50 {:7.2} ms  p99 {:7.2} ms",
        r.connections, r.ok, r.errors, r.requests_per_second, r.p50_ms, r.p99_ms
    );
}

/// Queries `GET /v1/models` and returns `(window, step_s)` of `key`,
/// panicking when the gateway does not serve it.
pub fn model_geometry(addr: &str, key: ModelKey) -> (usize, u32) {
    let (status, body) = http_get(addr, "/v1/models");
    assert_eq!(status, 200, "GET /v1/models failed: {body}");
    let doc = nilm_json::parse(&body).expect("models response is valid JSON");
    let label = key.label();
    let row = doc
        .get("models")
        .and_then(JsonValue::as_array)
        .and_then(|rows| {
            rows.iter().find(|r| r.get("key").and_then(JsonValue::as_str) == Some(&label))
        })
        .unwrap_or_else(|| panic!("gateway does not serve {label}: {body}"));
    let window = row.get("window").and_then(JsonValue::as_usize).expect("window");
    let step_s = row.get("step_s").and_then(JsonValue::as_usize).expect("step_s") as u32;
    (window, step_s)
}

/// Parses the `--detail full|summary` flag (default full).
pub fn arg_detail(args: &[String]) -> Detail {
    match arg_value(args, "--detail").as_deref() {
        None | Some("full") => Detail::Full,
        Some("summary") => Detail::Summary,
        Some(other) => panic!("--detail must be full or summary, not {other:?}"),
    }
}

/// Runs the loadgen mode against a running gateway and returns the
/// validated report document. Flags: `--connections`, `--requests`,
/// `--houses`, `--request-windows`, `--detail`, `--pipeline` (requests
/// written per burst before reading responses), plus two optional hard
/// gates that make the run fail loudly for CI: `--max-errors N` (non-200
/// count may not exceed N) and `--max-p99-ms F` (p99 latency bound).
/// `--latency-json PATH` additionally dumps the full latency histogram
/// (HDR buckets + p50/p90/p99/p999) to `PATH`.
pub fn loadgen_run(addr: &str, args: &[String]) -> JsonValue {
    let connections = arg_usize(args, "--connections", 4);
    let requests = arg_usize(args, "--requests", 64);
    let houses = arg_usize(args, "--houses", 1);
    let windows = arg_usize(args, "--request-windows", 8);
    let pipeline = arg_usize(args, "--pipeline", 1);
    let detail = arg_detail(args);
    let keep_alive = !args.iter().any(|a| a == "--no-keepalive");
    let key = gateway_key();
    let (window, step_s) = model_geometry(addr, key);
    let body = request_body(&[key], houses, windows, window, step_s, 0x10AD, detail);
    println!(
        "loadgen: {requests} requests x {houses} household(s) x {windows} windows over \
         {connections} {} connection(s) (pipeline depth {pipeline}) against {addr}",
        if keep_alive { "keep-alive" } else { "one-shot" }
    );
    let opts = LoadgenOptions {
        connections,
        total_requests: requests,
        keep_alive,
        pipeline,
        ..LoadgenOptions::default()
    };
    let report =
        run_loadgen_with(addr, &body, &opts).unwrap_or_else(|e| panic!("loadgen failed: {e}"));
    print_report("loadgen", &report);
    if let Some(max_errors) = arg_value(args, "--max-errors").map(|v| {
        v.parse::<usize>().unwrap_or_else(|_| panic!("--max-errors must be an integer, not {v:?}"))
    }) {
        assert!(
            report.errors <= max_errors,
            "loadgen gate failed: {} non-200 responses (allowed {max_errors}): {:?}",
            report.errors,
            report.by_status
        );
    }
    if let Some(max_p99) = arg_value(args, "--max-p99-ms").map(|v| {
        v.parse::<f64>().unwrap_or_else(|_| panic!("--max-p99-ms must be a number, not {v:?}"))
    }) {
        assert!(
            report.p99_ms <= max_p99,
            "loadgen gate failed: p99 {:.2}ms exceeds the {max_p99}ms bound",
            report.p99_ms
        );
    }
    if let Some(path) = arg_value(args, "--latency-json") {
        let text = latency_histogram_json(&report).to_pretty();
        nilm_json::validate(&text).expect("latency histogram must serialize to valid JSON");
        std::fs::write(&path, &text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("  latency histogram -> {path}");
    }
    JsonValue::object([
        ("schema", JsonValue::String("camal_gateway_loadgen/v1".into())),
        ("addr", JsonValue::String(addr.to_string())),
        ("requests", JsonValue::Number(requests as f64)),
        ("houses_per_request", JsonValue::Number(houses as f64)),
        ("windows_per_house", JsonValue::Number(windows as f64)),
        ("keep_alive", JsonValue::Bool(keep_alive)),
        ("pipeline", JsonValue::Number(pipeline as f64)),
        ("report", loadgen_json(&report)),
    ])
}

/// Trains the gateway checkpoint (Refit kettle at `scale`) into the zoo
/// directory under its registry file name, returning the trained model for
/// demo-mode verification.
pub fn train_gateway_zoo(scale: &Scale, args: &[String]) -> camal::CamalModel {
    let zoo = gateway_zoo_dir(args);
    std::fs::create_dir_all(&zoo).expect("create zoo directory");
    serving::train_model(scale, &zoo.join(gateway_key().file_name()))
}

/// The chaos gate: train → serve the checkpoint file-backed → arm batcher
/// panics and checkpoint-corruption faults (default 10% each) → fire a
/// `>= 200`-request loadgen → assert **zero hangs and zero 500s** (every
/// request answers 200 or 503, every 503 carries `Retry-After`) → disarm →
/// assert the gateway recovers to responses **byte-identical** to a direct
/// [`camal::stream::serve`] run. Flags: `--requests`, `--connections`,
/// `--rate-pct`, `--deadline-ms`, `--zoo`, `--out`.
///
/// This is what `camal_gateway chaos` and the CI chaos smoke stage run.
pub fn gateway_chaos(scale: &Scale, args: &[String]) {
    let mut trained = train_gateway_zoo(scale, args);
    let zoo = gateway_zoo_dir(args);
    let key = gateway_key();

    // File-backed on purpose: after an injected batcher panic the rebuilt
    // registry must reload from disk, which is where the corruption fault
    // bites.
    let mut registry = ModelRegistry::unbounded();
    registry.register_file(key, zoo.join(key.file_name()));
    let mut cfg = gateway_config(args);
    if arg_value(args, "--deadline-ms").is_none() {
        // Bound every request tightly so an injected wedge turns into a
        // timely 503 instead of a 60s client timeout.
        cfg.deadline = Duration::from_secs(10);
    }
    let batch = cfg.batch_windows;
    let gateway =
        Gateway::start(registry, cfg).unwrap_or_else(|e| panic!("cannot start gateway: {e}"));
    let addr = gateway.addr().to_string();
    println!("chaos gateway listening on {addr}");

    let window = trained.window();
    let tmpl = template(key.dataset);
    let households: Vec<HouseholdSeries> =
        (0..2).map(|i| synth_household(4, window, tmpl.step_s, 51 + i as u64)).collect();
    let body = localize_request(&[key], &households, Detail::Full).to_compact();
    let stream_cfg = StreamConfig {
        window,
        step_s: tmpl.step_s,
        max_ffill_s: 3 * tmpl.step_s,
        batch,
        appliance: Some(key.appliance),
        avg_power_w: tmpl.case(key.appliance).map(|c| c.avg_power_w).unwrap_or(1000.0),
    };
    let timelines = serve(&mut trained, &households, &stream_cfg);
    let rows: Vec<HouseholdRow> = households
        .iter()
        .zip(&timelines)
        .map(|(hh, tl)| HouseholdRow { id: &hh.id, degraded: None, timelines: vec![tl] })
        .collect();
    let expected = localize_response(&[key], &rows, Detail::Full).to_compact();

    // Pre-chaos sanity: healthy responses match the oracle byte-for-byte.
    let (status, got) = http_post(&addr, "/v1/localize", &body);
    assert_eq!(status, 200, "pre-chaos localize failed: {got}");
    assert_eq!(got, expected, "pre-chaos response differs from stream::serve");

    let requests = arg_usize(args, "--requests", 240).max(200);
    let connections = arg_usize(args, "--connections", 4);
    let rate = arg_usize(args, "--rate-pct", 10).min(100) as f64 / 100.0;
    println!(
        "arming faults: batcher.panic and persist.load.corrupt at {:.0}%, \
         {requests} requests over {connections} keep-alive connections",
        rate * 100.0
    );
    nilm_fault::arm("batcher.panic", rate, 7);
    nilm_fault::arm("persist.load.corrupt", rate, 11);
    let report = run_loadgen(&addr, connections, requests, &body, true)
        .unwrap_or_else(|e| panic!("chaos loadgen failed (a connection died or hung): {e}"));
    nilm_fault::disarm_all();
    print_report("chaos", &report);

    // Hard gates: every request answered, nothing but 200/503, every 503
    // tells the client when to retry.
    let completed: usize = report.by_status.values().sum();
    assert_eq!(completed, requests, "every request must complete — zero hangs");
    let illegal: Vec<u16> =
        report.by_status.keys().copied().filter(|s| *s != 200 && *s != 503).collect();
    assert!(
        illegal.is_empty(),
        "only 200 and 503 are acceptable under chaos, got statuses {:?}",
        report.by_status
    );
    assert_eq!(report.missing_retry_after, 0, "every 503 must carry Retry-After");
    assert!(report.ok > 0, "the gateway must keep serving successes under chaos");
    let shed = report.by_status.get(&503).copied().unwrap_or(0);
    println!(
        "chaos verdict: {} x 200, {shed} x 503 (all with Retry-After), 0 x 500, 0 hangs",
        report.ok
    );

    // Recovery gate: with faults disarmed the gateway must return to
    // byte-identical responses. A quarantine window opened by the last
    // injected corruption may still be draining — poll briefly.
    let mut recovered = None;
    for _ in 0..40 {
        let (status, got) = http_post(&addr, "/v1/localize", &body);
        if status == 200 {
            recovered = Some(got);
            break;
        }
        assert_eq!(status, 503, "post-chaos recovery saw status {status}: {got}");
        std::thread::sleep(Duration::from_millis(250));
    }
    let recovered = recovered.expect("gateway did not recover to 200 within 10s of disarming");
    assert_eq!(recovered, expected, "post-chaos response differs from the stream::serve baseline");
    println!("recovery: fault-free response is byte-identical to camal::stream::serve");

    let (status, metrics) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    let metrics_doc = nilm_json::parse(&metrics).expect("metrics must be valid JSON");
    for counter in ["batcher_restarts", "deadline_timeouts", "shard_retries_total"] {
        let v = metrics_doc.get(counter).and_then(JsonValue::as_usize).expect("counter");
        println!("  {counter}: {v}");
    }

    let doc = JsonValue::object([
        ("schema", JsonValue::String("camal_gateway_chaos/v1".into())),
        ("scale", JsonValue::String(scale.name.to_string())),
        ("requests", JsonValue::Number(requests as f64)),
        ("fault_rate", JsonValue::Number(rate)),
        ("report", loadgen_json(&report)),
        ("recovered_byte_identical", JsonValue::Bool(true)),
        ("metrics", metrics_doc),
    ]);
    gateway.shutdown();
    println!("gateway shut down cleanly");
    serving::write_summary(&doc, args, "camal_gateway_chaos");
}

/// The full demo: train → serve over a real socket → verify one response
/// byte-identical to a direct `stream::serve` run → loadgen sequentially
/// and at 4 concurrent connections → assert the micro-batching win → emit
/// the validated JSON report. This is what `camal_gateway demo`, `run_all`
/// and CI run.
pub fn gateway_demo(scale: &Scale, args: &[String]) {
    let mut trained = train_gateway_zoo(scale, args);
    let zoo = gateway_zoo_dir(args);
    let key = gateway_key();
    let mut registry = ModelRegistry::unbounded();
    let found = registry.register_dir(&zoo).expect("scan zoo directory");
    assert!(found.contains(&key), "zoo {} lost its checkpoint", zoo.display());

    let gateway =
        Gateway::start(registry, gateway_config(args)).expect("gateway must bind and warm up");
    let addr = gateway.addr().to_string();
    println!("gateway listening on {addr} ({} model(s))", found.len());

    let (status, health) = http_get(&addr, "/healthz");
    assert_eq!(status, 200, "healthz failed: {health}");
    println!("healthz: {health}");

    // Gate 1 — one real round-trip, byte-identical to a direct serve.
    let window = trained.window();
    let tmpl = template(key.dataset);
    let houses = arg_usize(args, "--houses", 2);
    let windows = arg_usize(args, "--request-windows", 8);
    let households: Vec<HouseholdSeries> =
        (0..houses).map(|i| synth_household(windows, window, tmpl.step_s, 7 + i as u64)).collect();
    let body = localize_request(&[key], &households, Detail::Full).to_compact();
    let (status, got) = http_post(&addr, "/v1/localize", &body);
    assert_eq!(status, 200, "localize failed: {got}");
    nilm_json::validate(&got).expect("localize response must be valid JSON");
    let stream_cfg = StreamConfig {
        window,
        step_s: tmpl.step_s,
        max_ffill_s: 3 * tmpl.step_s,
        batch: gateway_config(args).batch_windows,
        appliance: Some(key.appliance),
        avg_power_w: tmpl.case(key.appliance).map(|c| c.avg_power_w).unwrap_or(1000.0),
    };
    let timelines = serve(&mut trained, &households, &stream_cfg);
    let rows: Vec<HouseholdRow> = households
        .iter()
        .zip(&timelines)
        .map(|(hh, tl)| HouseholdRow { id: &hh.id, degraded: None, timelines: vec![tl] })
        .collect();
    let expected = localize_response(&[key], &rows, Detail::Full).to_compact();
    assert_eq!(got, expected, "gateway response differs from the direct stream::serve baseline");
    println!(
        "equivalence check: gateway response is byte-identical to camal::stream::serve \
         ({} households x {} windows)",
        houses, windows
    );

    // Gate 2 — concurrency + micro-batching pays. Baseline: the same
    // workload issued as sequential single requests — one request at a
    // time, each on its own connection, the shape a naive integration (one
    // curl per household) produces, paying TCP setup and a handler-thread
    // spawn per request with zero batcher coalescing. Against it: the
    // same total workload over `--connections` concurrent keep-alive
    // connections, which the batcher coalesces into shared fleet passes.
    // A keep-alive sequential run is also measured and reported so the
    // connection-reuse and coalescing contributions stay visible
    // separately. Medians of 3 alternating rounds cancel machine drift.
    let requests = arg_usize(args, "--requests", if scale.name == "smoke" { 600 } else { 2000 });
    let bench_conns = arg_usize(args, "--connections", 8).max(4);
    let bench_windows = arg_usize(args, "--bench-windows", 1);
    let bench_body =
        request_body(&[key], 1, bench_windows, window, tmpl.step_s, 99, Detail::Summary);
    println!(
        "loadgen: {requests} requests x 1 household x {bench_windows} window(s), summary \
         detail, 3 alternating rounds: sequential single (1 conn/request) vs sequential \
         keep-alive vs {bench_conns} concurrent keep-alive connections"
    );
    let mut single_runs: Vec<LoadgenReport> = Vec::new();
    let mut seq_ka_runs: Vec<LoadgenReport> = Vec::new();
    let mut con_runs: Vec<LoadgenReport> = Vec::new();
    for round in 0..3 {
        let s = run_loadgen(&addr, 1, requests, &bench_body, false)
            .unwrap_or_else(|e| panic!("sequential-single loadgen failed: {e}"));
        print_report(&format!("seq-single #{round}"), &s);
        let k = run_loadgen(&addr, 1, requests, &bench_body, true)
            .unwrap_or_else(|e| panic!("sequential keep-alive loadgen failed: {e}"));
        print_report(&format!("seq-ka     #{round}"), &k);
        let c = run_loadgen(&addr, bench_conns, requests, &bench_body, true)
            .unwrap_or_else(|e| panic!("concurrent loadgen failed: {e}"));
        print_report(&format!("concurrent #{round}"), &c);
        assert_eq!(s.errors + k.errors + c.errors, 0, "no request may be shed in the demo");
        single_runs.push(s);
        seq_ka_runs.push(k);
        con_runs.push(c);
    }
    let median_run = |runs: &[LoadgenReport]| -> LoadgenReport {
        let mut sorted: Vec<&LoadgenReport> = runs.iter().collect();
        sorted.sort_by(|a, b| {
            a.requests_per_second.partial_cmp(&b.requests_per_second).expect("finite rps")
        });
        sorted[sorted.len() / 2].clone()
    };
    let sequential = median_run(&single_runs);
    let sequential_keepalive = median_run(&seq_ka_runs);
    let concurrent = median_run(&con_runs);
    assert!(
        concurrent.requests_per_second > sequential.requests_per_second,
        "the concurrent gateway must beat sequential single requests: median {:.1} req/s at \
         {bench_conns} connections vs {:.1} req/s sequential",
        concurrent.requests_per_second,
        sequential.requests_per_second
    );
    println!(
        "concurrency win: {:.2}x median requests/s at {bench_conns} connections vs \
         sequential single requests ({:.2}x vs sequential keep-alive)",
        concurrent.requests_per_second / sequential.requests_per_second,
        concurrent.requests_per_second / sequential_keepalive.requests_per_second.max(1e-9)
    );

    let (status, metrics) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    let metrics_doc = nilm_json::parse(&metrics).expect("metrics must be valid JSON");

    let doc = JsonValue::object([
        ("schema", JsonValue::String("camal_gateway/v1".into())),
        ("scale", JsonValue::String(scale.name.to_string())),
        ("zoo", JsonValue::String(zoo.display().to_string())),
        ("window", JsonValue::Number(window as f64)),
        ("requests", JsonValue::Number(requests as f64)),
        // The loadgen workload the three sections below measured — NOT the
        // gate-1 verification request shape.
        ("windows_per_request", JsonValue::Number(bench_windows as f64)),
        ("sequential_single", loadgen_json(&sequential)),
        ("sequential_keepalive", loadgen_json(&sequential_keepalive)),
        ("concurrent", loadgen_json(&concurrent)),
        (
            "speedup",
            JsonValue::Number(
                concurrent.requests_per_second / sequential.requests_per_second.max(1e-9),
            ),
        ),
        ("metrics", metrics_doc),
    ]);
    gateway.shutdown();
    println!("gateway shut down cleanly");
    serving::write_summary(&doc, args, "camal_gateway");
}
