//! JSON emission, validation and parsing — re-exported from [`nilm_json`].
//!
//! The emitter/validator originally lived here; it was promoted into the
//! `nilm_json` crate so the network gateway (`nilm_serve`) can share the
//! data model without depending on the whole evaluation harness. This
//! module stays as a re-export so existing `nilm_eval::json::...` callers
//! keep compiling unchanged.

pub use nilm_json::{parse, validate, JsonValue};
