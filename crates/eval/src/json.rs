//! Minimal JSON emission and validation helpers.
//!
//! The vendored `serde` stand-in carries no data model (the offline build
//! cannot pull `serde_json`), so the perf harness writes its
//! `BENCH_conv_gemm.json` through [`JsonValue`] and CI re-reads the file
//! through [`validate`] — a strict RFC 8259 syntax checker — to guarantee
//! the artifact stays machine-parseable.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects use a [`BTreeMap`], so emission is deterministic
/// (stable key order) — diffs of committed baselines stay readable.
#[derive(Clone, Debug)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values are emitted as `null`).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with sorted keys.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Builds an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JsonValue::Number(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            JsonValue::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < map.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Checks that `input` is one syntactically valid JSON document (with
/// nothing but whitespace after it). Returns the byte offset of the first
/// error otherwise.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}")),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                let esc = b.get(*pos + 1).copied();
                match esc {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                    Some(b'u') => {
                        let hex = b.get(*pos + 2..*pos + 6);
                        match hex {
                            Some(h) if h.iter().all(|d| d.is_ascii_hexdigit()) => *pos += 6,
                            _ => return Err(format!("bad \\u escape at byte {pos}")),
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let first_digit = b.get(*pos).copied();
    let int_digits = eat_digits(b, pos);
    if int_digits == 0 {
        return Err(format!("number without digits at byte {start}"));
    }
    // RFC 8259: int = zero / ( digit1-9 *DIGIT ) — no leading zeros.
    if int_digits > 1 && first_digit == Some(b'0') {
        return Err(format!("leading zero in number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(b, pos) == 0 {
            return Err(format!("missing fraction digits at byte {pos}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(format!("missing exponent digits at byte {pos}"));
        }
    }
    Ok(())
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    *pos - start
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
                skip_ws(b, pos);
            }
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
                skip_ws(b, pos);
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitted_documents_validate() {
        let doc = JsonValue::object([
            ("name", JsonValue::String("bench \"x\"\n".into())),
            ("speedup", JsonValue::Number(3.25)),
            ("ok", JsonValue::Bool(true)),
            ("items", JsonValue::Array(vec![JsonValue::Number(1.0), JsonValue::Null])),
            ("empty", JsonValue::Object(BTreeMap::new())),
        ]);
        let text = doc.to_pretty();
        validate(&text).expect("emitted JSON must parse");
    }

    #[test]
    fn validator_accepts_rfc_examples() {
        for ok in [
            "null",
            " true ",
            "-12.5e+3",
            "[]",
            "[1, 2, [3]]",
            r#"{"a": {"b": [1, "two", null]}, "c": false}"#,
            r#""esc: \" \\ \n é""#,
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok:?} rejected: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "01a",
            "01",
            "-012.5",
            "\"unterminated",
            "{\"a\": 1} extra",
            "nul",
            "1. ",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let doc = JsonValue::Number(f64::NAN);
        assert_eq!(doc.to_pretty(), "null\n");
    }
}
