//! Table IV: ablation of CamAL's design on the REFIT cases — full CamAL,
//! without the attention-sigmoid module, and without kernel diversity
//! (every member at k_p = 7).

use crate::output::{f1 as fmt1, f3, Table};
use crate::runner::{all_cases, build_case_data, case_avg_power, Case, Scale};
use camal::{CamalModel, CaseReport};
use nilm_data::appliance::ApplianceKind;
use nilm_data::templates::DatasetId;

#[derive(Default, Clone, Copy)]
struct Acc {
    f1: f64,
    pr: f64,
    rc: f64,
    mae: f64,
    mr: f64,
    n: usize,
}

impl Acc {
    fn push(&mut self, r: &CaseReport) {
        self.f1 += r.localization.f1;
        self.pr += r.localization.precision;
        self.rc += r.localization.recall;
        self.mae += r.energy.mae;
        self.mr += r.energy.matching_ratio;
        self.n += 1;
    }

    fn mean(&self) -> [f64; 5] {
        let n = self.n.max(1) as f64;
        [self.f1 / n, self.pr / n, self.rc / n, self.mae / n, self.mr / n]
    }
}

/// Runs the Table IV ablation averaged over `runs` seeds (paper: 10).
pub fn run(scale: &Scale, runs: usize) -> Table {
    let cases: Vec<Case> = if scale.name == "smoke" {
        vec![Case { dataset: DatasetId::Refit, appliance: ApplianceKind::Kettle }]
    } else {
        all_cases().into_iter().filter(|c| c.dataset == DatasetId::Refit).collect()
    };

    let mut full = Acc::default();
    let mut no_attention = Acc::default();
    let mut fixed_kernel = Acc::default();

    for case in &cases {
        for run_i in 0..runs.max(1) {
            let mut s = scale.clone();
            s.seed = scale.seed.wrapping_add(run_i as u64 * 104729);
            let (_, data) = build_case_data(case, &s);
            let avg_power = case_avg_power(case);

            // Full CamAL. The "w/o attention" variant reuses the same
            // trained ensemble with the attention module switched off —
            // isolating the module's effect exactly as Table IV intends.
            let cfg = s.camal_config();
            let model = CamalModel::train(&cfg, &data.train, &data.val, s.threads);
            let mut with_attention = model;
            full.push(&with_attention.evaluate(&data.test, avg_power, 16));
            let mut cfg_no_attn = cfg.clone().without_attention();
            cfg_no_attn.n_ensemble = with_attention.ensemble_size();
            let mut without = CamalModel::from_members(cfg_no_attn, with_attention.into_members());
            no_attention.push(&without.evaluate(&data.test, avg_power, 16));

            // w/o kernel diversity: retrain with k_p = 7 everywhere, same
            // candidate budget.
            let mut cfg_fixed = cfg.clone().fixed_kernel();
            cfg_fixed.trials = (cfg.kernels.len() * cfg.trials).max(1);
            let mut fixed = CamalModel::train(&cfg_fixed, &data.train, &data.val, s.threads);
            fixed_kernel.push(&fixed.evaluate(&data.test, avg_power, 16));
        }
    }

    let mut table = Table::new(
        "Table IV — CamAL design ablation (REFIT cases)",
        &["metric", "CamAL", "w/o Attention module", "w/o different kernel kp"],
    );
    let f = full.mean();
    let a = no_attention.mean();
    let k = fixed_kernel.mean();
    let pct = |base: f64, v: f64| -> String {
        if base.abs() < 1e-12 {
            "n/a".to_string()
        } else {
            format!("{:+.1}%", (v - base) / base * 100.0)
        }
    };
    let metric_rows = [
        ("F1 ↑", f[0], a[0], k[0], true),
        ("Pr ↑", f[1], a[1], k[1], true),
        ("Rc ↑", f[2], a[2], k[2], true),
        ("MAE ↓", f[3], a[3], k[3], false),
        ("MR ↑", f[4], a[4], k[4], true),
    ];
    for (name, base, abl_a, abl_k, _higher_better) in metric_rows {
        let fmt = |v: f64| if name == "MAE ↓" { fmt1(v) } else { f3(v) };
        table.push_row(vec![
            name.to_string(),
            fmt(base),
            format!("{} ({})", fmt(abl_a), pct(base, abl_a)),
            format!("{} ({})", fmt(abl_k), pct(base, abl_k)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_table_has_five_metric_rows() {
        let mut s = Scale::smoke();
        s.epochs = 1;
        s.kernels = vec![5, 9];
        s.n_ensemble = 2;
        let table = run(&s, 1);
        assert_eq!(table.rows.len(), 5);
        let metrics: Vec<&str> = table.rows.iter().map(|r| r[0].as_str()).collect();
        assert_eq!(metrics, vec!["F1 ↑", "Pr ↑", "Rc ↑", "MAE ↓", "MR ↑"]);
    }
}
