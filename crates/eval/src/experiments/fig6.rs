//! Fig. 6: (a) training-window-length ablation, (b) detection versus
//! localization correlation, (c) ensemble-size ablation.

use crate::output::{f3, Table};
use crate::runner::{
    all_cases, build_case_data, case_avg_power, run_camal, smoke_cases, Case, Scale,
};
use camal::CamalModel;
use nilm_data::appliance::ApplianceKind;
use nilm_data::pipeline::{prepare_case, CaseData, SplitConfig};
use nilm_data::templates::DatasetId;

/// Fig. 6(a): train CamAL with different window lengths, evaluate on the
/// standard test windows. Paper sweeps {360, 720, 1440, 2880} samples (6h to
/// 2 days at 1-minute sampling) on UKDALE and REFIT.
pub fn run_window_length(scale: &Scale) -> Table {
    let lengths: Vec<usize> = match scale.name {
        "smoke" => vec![64, 128],
        "quick" => vec![96, 192, 384],
        _ => vec![360, 720, 1440, 2880],
    };
    let cases: Vec<Case> = [DatasetId::UkDale, DatasetId::Refit]
        .iter()
        .flat_map(|&d| {
            let pool = if scale.name == "smoke" { smoke_cases() } else { all_cases() };
            pool.into_iter().filter(move |c| c.dataset == d)
        })
        .collect();
    let mut table = Table::new(
        "Fig. 6(a) — impact of training window length on localization F1",
        &["case", "train_window", "train_windows_available", "f1"],
    );
    for case in &cases {
        let (ds, test_data) = build_case_data(case, scale);
        for &w in &lengths {
            // Re-slice the training houses at window length w; the test set
            // keeps the standard window (as in the paper).
            let train_data = prepare_case(&ds, case.appliance, w, &SplitConfig::default());
            if train_data.train.positives() == 0
                || train_data.train.positives() == train_data.train.len()
            {
                table.push_row(vec![
                    case.label(),
                    w.to_string(),
                    train_data.train.len().to_string(),
                    "n/a (single-class)".to_string(),
                ]);
                continue;
            }
            let mixed = CaseData {
                train: train_data.train.clone(),
                val: train_data.val.clone(),
                test: test_data.test.clone(),
            };
            let run = run_camal(case, &mixed, scale, None);
            table.push_row(vec![
                case.label(),
                w.to_string(),
                train_data.train.len().to_string(),
                f3(run.report.localization.f1),
            ]);
        }
    }
    table
}

/// Fig. 6(b): scatter of detection (balanced accuracy) against localization
/// (F1) across all cases.
pub fn run_detection_vs_localization(scale: &Scale) -> Table {
    let cases = if scale.name == "smoke" { smoke_cases() } else { all_cases() };
    let mut table = Table::new(
        "Fig. 6(b) — detection (balanced accuracy) vs localization (F1)",
        &["case", "balanced_accuracy", "f1"],
    );
    for case in &cases {
        let (_, data) = build_case_data(case, scale);
        let run = run_camal(case, &data, scale, None);
        table.push_row(vec![
            case.label(),
            f3(run.report.detection.balanced_accuracy),
            f3(run.report.localization.f1),
        ]);
    }
    table
}

/// Fig. 6(c): sweep the ensemble size n over a shared candidate pool
/// (REFIT cases in the paper). Trains `max(n)` candidates once per case and
/// evaluates each prefix.
pub fn run_ensemble_size(scale: &Scale) -> Table {
    let sizes: Vec<usize> = match scale.name {
        "smoke" => vec![1, 2],
        "quick" => vec![1, 3, 5],
        _ => vec![1, 3, 5, 7, 9, 15],
    };
    let max_n = *sizes.iter().max().unwrap();
    let cases: Vec<Case> = if scale.name == "smoke" {
        vec![Case { dataset: DatasetId::Refit, appliance: ApplianceKind::Kettle }]
    } else {
        all_cases().into_iter().filter(|c| c.dataset == DatasetId::Refit).collect()
    };
    let mut table = Table::new(
        "Fig. 6(c) — localization/detection vs number of ResNets",
        &["case", "n_resnets", "f1", "balanced_accuracy"],
    );
    for case in &cases {
        let (_, data) = build_case_data(case, scale);
        // One big candidate pool, reused across ensemble sizes.
        let mut cfg = scale.camal_config();
        cfg.n_ensemble = max_n;
        // Guarantee enough candidates.
        while cfg.kernels.len() * cfg.trials < max_n {
            cfg.trials += 1;
        }
        let (mut pool, _) = camal::train_ensemble(&cfg, &data.train, &data.val, scale.threads);
        for &n in &sizes {
            // Pool is sorted by validation loss: the best n form the model.
            let n = n.min(pool.len());
            let head: Vec<camal::EnsembleMember> = pool.drain(..n).collect();
            let mut sub_cfg = cfg.clone();
            sub_cfg.n_ensemble = n;
            let mut model = CamalModel::from_members(sub_cfg, head);
            let report = model.evaluate(&data.test, case_avg_power(case), 16);
            table.push_row(vec![
                case.label(),
                n.to_string(),
                f3(report.localization.f1),
                f3(report.detection.balanced_accuracy),
            ]);
            // Return the borrowed members to the front of the pool.
            let mut head = model.into_members();
            head.append(&mut pool);
            pool = head;
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        let mut s = Scale::smoke();
        s.epochs = 1;
        s.kernels = vec![5];
        s.n_ensemble = 1;
        s
    }

    #[test]
    fn window_length_table_runs() {
        let table = run_window_length(&tiny_scale());
        assert!(!table.rows.is_empty());
        assert_eq!(table.headers.len(), 4);
    }

    #[test]
    fn det_vs_loc_covers_smoke_cases() {
        let table = run_detection_vs_localization(&tiny_scale());
        assert_eq!(table.rows.len(), smoke_cases().len());
        for row in &table.rows {
            let ba: f64 = row[1].parse().unwrap();
            assert!((0.0..=1.0).contains(&ba));
        }
    }

    #[test]
    fn ensemble_size_sweep_has_one_row_per_size() {
        let mut s = tiny_scale();
        s.kernels = vec![5, 9];
        let table = run_ensemble_size(&s);
        let ns: Vec<usize> = table.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert_eq!(ns, vec![1, 2]);
    }
}
