//! Extension experiments beyond the paper's tables/figures:
//!
//! 1. **Backbone ablation** — the paper (§IV-A) argues ResNets are a better
//!    backbone than deeper general-purpose classifiers such as
//!    InceptionTime; we measure that claim directly.
//! 2. **Post-processing ablation** — the conclusion calls for "more advanced
//!    post-processing"; we measure the duration-prior filters of
//!    `camal::postprocess`.

use crate::output::{f3, Table};
use crate::runner::{build_case_data, case_avg_power, Case, Scale};
use camal::{report_from_status, CamalModel};
use nilm_data::appliance::ApplianceKind;
use nilm_data::templates::DatasetId;
use nilm_models::Backbone;

fn cases(scale: &Scale) -> Vec<Case> {
    if scale.name == "smoke" {
        vec![Case { dataset: DatasetId::Refit, appliance: ApplianceKind::Kettle }]
    } else {
        vec![
            Case { dataset: DatasetId::Refit, appliance: ApplianceKind::Kettle },
            Case { dataset: DatasetId::Refit, appliance: ApplianceKind::Dishwasher },
            Case { dataset: DatasetId::UkDale, appliance: ApplianceKind::Dishwasher },
        ]
    }
}

/// Backbone ablation: CamAL with ResNet vs InceptionTime members.
pub fn run_backbone(scale: &Scale) -> Table {
    let mut table = Table::new(
        "Extension — detector backbone ablation (ResNet vs InceptionTime)",
        &["case", "backbone", "f1", "balanced_accuracy", "params", "train_s"],
    );
    for case in &cases(scale) {
        let (_, data) = build_case_data(case, scale);
        for backbone in [Backbone::ResNet, Backbone::InceptionTime] {
            let mut cfg = scale.camal_config();
            cfg.backbone = backbone;
            let mut model = CamalModel::train(&cfg, &data.train, &data.val, scale.threads);
            let report = model.evaluate(&data.test, case_avg_power(case), 16);
            table.push_row(vec![
                case.label(),
                format!("{backbone:?}"),
                f3(report.localization.f1),
                f3(report.detection.balanced_accuracy),
                model.num_params().to_string(),
                f3(model.train_stats.total_secs),
            ]);
        }
    }
    table
}

/// Post-processing ablation: raw CamAL status vs duration-prior filtered.
pub fn run_postprocess(scale: &Scale) -> Table {
    let mut table = Table::new(
        "Extension — duration-prior post-processing ablation",
        &["case", "variant", "f1", "precision", "recall", "event_f1"],
    );
    for case in &cases(scale) {
        let (ds, data) = build_case_data(case, scale);
        let step_s = ds.template.step_s;
        let mut model =
            CamalModel::train(&scale.camal_config(), &data.train, &data.val, scale.threads);
        let loc = model.localize_set(&data.test, 16);
        let avg_power = case_avg_power(case);

        // Raw status.
        let raw_report = report_from_status(&data.test, &loc.status, &loc.detected, avg_power);
        let raw_event = mean_event_f1(&loc.status, &data.test);
        table.push_row(vec![
            case.label(),
            "raw".to_string(),
            f3(raw_report.localization.f1),
            f3(raw_report.localization.precision),
            f3(raw_report.localization.recall),
            f3(raw_event),
        ]);

        // Filtered status.
        let mut filtered = loc.status.clone();
        for status in &mut filtered {
            camal::postprocess::apply_duration_prior(status, case.appliance, step_s);
        }
        let f_report = report_from_status(&data.test, &filtered, &loc.detected, avg_power);
        let f_event = mean_event_f1(&filtered, &data.test);
        table.push_row(vec![
            case.label(),
            "duration-prior".to_string(),
            f3(f_report.localization.f1),
            f3(f_report.localization.precision),
            f3(f_report.localization.recall),
            f3(f_event),
        ]);
    }
    table
}

/// Mean event-level F1 (Jaccard ≥ 0.3) across windows with ground truth.
fn mean_event_f1(status: &[Vec<u8>], set: &nilm_data::windows::WindowSet) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for (s, w) in status.iter().zip(&set.windows) {
        if w.status.is_empty() {
            continue;
        }
        let (_, _, f1) = nilm_metrics::event_f1(s, &w.status, 0.3);
        total += f1;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        let mut s = Scale::smoke();
        s.epochs = 1;
        s.kernels = vec![5];
        s.n_ensemble = 1;
        s
    }

    #[test]
    fn backbone_ablation_covers_both_architectures() {
        let t = run_backbone(&tiny());
        let backbones: std::collections::BTreeSet<String> =
            t.rows.iter().map(|r| r[1].clone()).collect();
        assert!(backbones.contains("ResNet"));
        assert!(backbones.contains("InceptionTime"));
    }

    #[test]
    fn postprocess_ablation_has_two_variants_per_case() {
        let t = run_postprocess(&tiny());
        assert_eq!(t.rows.len() % 2, 0);
        assert_eq!(t.rows[0][1], "raw");
        assert_eq!(t.rows[1][1], "duration-prior");
    }
}
