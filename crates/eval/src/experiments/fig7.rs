//! Fig. 7: scalability. (a) training time per method; (b) training time per
//! epoch versus the number of households on a synthetic white-noise dataset
//! (as in the paper); (c) single-thread inference throughput versus input
//! length.

use crate::output::{f3, Table};
use crate::runner::{build_case_data, run_baseline, run_camal, Case, Scale};
use camal::CamalModel;
use nilm_data::appliance::ApplianceKind;
use nilm_data::preprocess::Window;
use nilm_data::templates::DatasetId;
use nilm_data::windows::WindowSet;
use nilm_models::baselines::BaselineKind;
use nilm_models::{train_strong, train_weak_mil};
use nilm_tensor::layer::Mode;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// Fig. 7(a): wall-clock training time per method on one representative
/// case per dataset.
pub fn run_training_time(scale: &Scale) -> Table {
    let cases = if scale.name == "smoke" {
        vec![Case { dataset: DatasetId::Refit, appliance: ApplianceKind::Kettle }]
    } else {
        crate::runner::smoke_cases() // one case per dataset
    };
    let mut table = Table::new(
        "Fig. 7(a) — training time per method (seconds)",
        &["case", "method", "train_s", "secs_per_epoch", "labels"],
    );
    for case in &cases {
        let (_, data) = build_case_data(case, scale);
        let mut runs = vec![run_camal(case, &data, scale, None)];
        for &kind in BaselineKind::all() {
            runs.push(run_baseline(kind, case, &data, scale));
        }
        for run in runs {
            table.push_row(vec![
                case.label(),
                run.method.clone(),
                f3(run.train_secs),
                f3(run.secs_per_epoch),
                run.labels_used.to_string(),
            ]);
        }
    }
    table
}

/// White-noise windows mimicking the paper's synthetic scalability dataset
/// (random consumption, per-timestep ground truth).
fn white_noise_windows(houses: usize, samples_per_house: usize, w: usize, seed: u64) -> WindowSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut windows = Vec::new();
    for house in 0..houses {
        for _ in 0..samples_per_house / w {
            let input: Vec<f32> = (0..w).map(|_| rng.random::<f32>()).collect();
            let status: Vec<u8> = (0..w).map(|_| rng.random_bool(0.2) as u8).collect();
            let weak = status.iter().any(|&s| s == 1) as u8;
            windows.push(Window {
                aggregate_w: input.iter().map(|v| v * 1000.0).collect(),
                appliance_w: vec![0.0; w],
                input,
                status,
                weak_label: weak,
                house_id: house,
            });
        }
    }
    WindowSet::new(windows)
}

/// Fig. 7(b): training time per epoch as the number of households grows.
pub fn run_epoch_scaling(scale: &Scale) -> Table {
    let house_counts: Vec<usize> = match scale.name {
        "smoke" => vec![1, 2],
        "quick" => vec![2, 4, 8],
        _ => vec![4, 8, 16, 32],
    };
    // The paper simulates 30-minute sampling for one year (length 17520)
    // per house; we scale that down with the preset.
    let samples_per_house = match scale.name {
        "smoke" => 4 * scale.window,
        "quick" => 8 * scale.window,
        _ => 17520,
    };
    let mut table = Table::new(
        "Fig. 7(b) — training time per epoch vs number of households",
        &["method", "households", "windows", "secs_per_epoch"],
    );
    let mut train_cfg = scale.train_config();
    train_cfg.epochs = 1;
    for &houses in &house_counts {
        let data = white_noise_windows(houses, samples_per_house, scale.window, 0xF16_7B);
        // CamAL: one member's epoch time × candidates (members train in
        // parallel in practice; the paper reports per-epoch compute).
        let mut cfg = scale.camal_config();
        cfg.train = train_cfg;
        cfg.trials = 1;
        cfg.kernels = vec![scale.kernels[0]];
        cfg.n_ensemble = 1;
        let start = Instant::now();
        let _ = CamalModel::train(&cfg, &data, &data, 1);
        table.push_row(vec![
            "CamAL (per member)".to_string(),
            houses.to_string(),
            data.len().to_string(),
            f3(start.elapsed().as_secs_f64()),
        ]);
        for &kind in BaselineKind::all() {
            let mut rng = nilm_tensor::init::rng(0xF1);
            let mut model = kind.build(&mut rng, scale.width_div);
            let stats = if kind.is_weakly_supervised() {
                train_weak_mil(model.as_mut(), &data, &train_cfg)
            } else {
                train_strong(model.as_mut(), &data, &train_cfg)
            };
            table.push_row(vec![
                kind.name().to_string(),
                houses.to_string(),
                data.len().to_string(),
                f3(stats.secs_per_epoch()),
            ]);
        }
    }
    table
}

/// Fig. 7(c): single-thread inference throughput (windows/second) versus
/// input sequence length.
pub fn run_throughput(scale: &Scale) -> Table {
    let lengths: Vec<usize> = match scale.name {
        "smoke" => vec![128, 256],
        "quick" => vec![128, 256, 510],
        _ => vec![128, 256, 510, 1024, 2048],
    };
    let reps = if scale.name == "smoke" { 4 } else { 16 };
    let mut table = Table::new(
        "Fig. 7(c) — inference throughput vs input length (windows/sec)",
        &["method", "input_len", "windows_per_sec"],
    );
    for &len in &lengths {
        let data = white_noise_windows(1, reps * len, len, 0x7C);
        let idx: Vec<usize> = (0..data.len()).collect();

        // CamAL: full pipeline (ensemble + CAM + attention).
        let mut cfg = scale.camal_config();
        cfg.train.epochs = 1;
        let tiny = data.subsample(4, &mut StdRng::seed_from_u64(1));
        let mut model = CamalModel::train(&cfg, &tiny, &tiny, scale.threads);
        let start = Instant::now();
        let _ = model.localize_set(&data, 1);
        let camal_tp = data.len() as f64 / start.elapsed().as_secs_f64().max(1e-9);
        table.push_row(vec!["CamAL".to_string(), len.to_string(), f3(camal_tp)]);

        for &kind in BaselineKind::all() {
            let mut rng = nilm_tensor::init::rng(0x7C1);
            let mut m = kind.build(&mut rng, scale.width_div);
            let start = Instant::now();
            for chunk in idx.chunks(1) {
                let x = data.batch_inputs(chunk);
                let _ = m.forward(&x, Mode::Eval);
            }
            let tp = data.len() as f64 / start.elapsed().as_secs_f64().max(1e-9);
            table.push_row(vec![kind.name().to_string(), len.to_string(), f3(tp)]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        let mut s = Scale::smoke();
        s.epochs = 1;
        s.kernels = vec![5];
        s.n_ensemble = 1;
        s.trials = 1;
        s
    }

    #[test]
    fn white_noise_windows_have_expected_count() {
        let set = white_noise_windows(3, 256, 64, 1);
        assert_eq!(set.len(), 3 * 4);
        assert_eq!(set.window_len(), 64);
    }

    #[test]
    fn training_time_table_covers_all_methods() {
        let table = run_training_time(&tiny_scale());
        let methods: std::collections::BTreeSet<String> =
            table.rows.iter().map(|r| r[1].clone()).collect();
        assert_eq!(methods.len(), 7); // CamAL + 6 baselines
    }

    #[test]
    fn epoch_scaling_times_increase_with_households() {
        let table = run_epoch_scaling(&tiny_scale());
        // For each method, time at the largest house count should be >= the
        // smallest (allowing noise, just check the table shape).
        assert!(table.rows.len() >= 14);
    }

    #[test]
    fn throughput_is_positive() {
        let table = run_throughput(&tiny_scale());
        for row in &table.rows {
            let tp: f64 = row[2].parse().unwrap();
            assert!(tp > 0.0);
        }
    }
}
