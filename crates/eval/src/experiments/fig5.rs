//! Fig. 5 (and the Fig. 1 headline panel): localization F1 versus the
//! number of training labels, for CamAL, CRNN-Weak and the four strongly
//! supervised baselines. Weak methods spend 1 label per window; strong
//! methods spend `window_len` labels per window.

use crate::output::{f3, Table};
use crate::runner::{
    all_cases, build_case_data, run_baseline, run_camal, smoke_cases, Case, Scale,
};
use nilm_data::pipeline::CaseData;
use nilm_models::baselines::BaselineKind;
use nilm_models::co::CoDisaggregator;
use rand::SeedableRng;

/// Window budgets swept (log-ish spacing), capped by the available windows.
fn budgets(scale: &Scale, available: usize) -> Vec<usize> {
    let raw: &[usize] = match scale.name {
        "smoke" => &[8, 32],
        "quick" => &[8, 24, 64, 160],
        _ => &[8, 24, 64, 160, 400, 1000],
    };
    let mut out: Vec<usize> = raw.iter().copied().filter(|&b| b < available).collect();
    out.push(available);
    out.dedup();
    out
}

/// Subsamples the training windows to a budget.
fn clamp_train(data: &CaseData, budget: usize, seed: u64) -> CaseData {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    CaseData {
        train: data.train.subsample(budget, &mut rng),
        val: data.val.clone(),
        test: data.test.clone(),
    }
}

/// Runs the label sweep. `only` filters cases by `dataset:appliance` label.
pub fn run(scale: &Scale, only: Option<&str>) -> Table {
    let cases: Vec<Case> = if scale.name == "smoke" { smoke_cases() } else { all_cases() }
        .into_iter()
        .filter(|c| only.is_none_or(|o| c.label() == o))
        .collect();
    assert!(!cases.is_empty(), "no case matches filter {only:?}");

    let mut table = Table::new(
        "Fig. 5 — localization F1 vs number of training labels",
        &["case", "method", "windows", "labels", "f1", "train_s"],
    );
    for case in &cases {
        let (_, data) = build_case_data(case, scale);
        // Zero-label reference: Hart's Combinatorial Optimization, evaluated
        // once per case (it does not train).
        let co = CoDisaggregator::single(case.appliance, crate::runner::case_avg_power(case));
        let status: Vec<Vec<u8>> =
            data.test.windows.iter().map(|w| co.localize(&w.aggregate_w, case.appliance)).collect();
        let detected: Vec<bool> = status.iter().map(|s| s.iter().any(|&b| b == 1)).collect();
        let co_report = camal::report_from_status(
            &data.test,
            &status,
            &detected,
            crate::runner::case_avg_power(case),
        );
        table.push_row(vec![
            case.label(),
            "CO (unsupervised)".to_string(),
            "0".to_string(),
            "0".to_string(),
            f3(co_report.localization.f1),
            "0.000".to_string(),
        ]);
        for &budget in &budgets(scale, data.train.len()) {
            let sub = clamp_train(&data, budget, scale.seed ^ budget as u64);
            if sub.train.positives() == 0 || sub.train.positives() == sub.train.len() {
                continue; // single-class budget: no training signal
            }
            let mut runs = vec![run_camal(case, &sub, scale, None)];
            for &kind in BaselineKind::all() {
                runs.push(run_baseline(kind, case, &sub, scale));
            }
            for run in runs {
                table.push_row(vec![
                    case.label(),
                    run.method.clone(),
                    sub.train.len().to_string(),
                    run.labels_used.to_string(),
                    f3(run.report.localization.f1),
                    f3(run.train_secs),
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_are_increasing_and_capped() {
        let scale = Scale::smoke();
        let b = budgets(&scale, 20);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*b.last().unwrap(), 20);
    }

    #[test]
    fn smoke_sweep_produces_rows_for_every_method() {
        let mut scale = Scale::smoke();
        scale.epochs = 1;
        scale.kernels = vec![5];
        scale.n_ensemble = 1;
        let table = run(&scale, Some("refit:kettle"));
        assert!(!table.rows.is_empty());
        let methods: std::collections::BTreeSet<String> =
            table.rows.iter().map(|r| r[1].clone()).collect();
        assert!(methods.contains("CamAL"));
        assert!(methods.contains("CRNN Weak"));
        assert!(methods.contains("TPNILM"));
        // Weak methods must report far fewer labels than strong ones at the
        // same window budget.
        for w in table.rows.windows(7) {
            let camal_labels: usize = w[0][3].parse().unwrap();
            let strong_labels: usize =
                w.iter().find(|r| r[1] == "Unet-NILM").map(|r| r[3].parse().unwrap()).unwrap_or(0);
            if w[0][1] == "CamAL" && strong_labels > 0 && w[0][2] == w[6][2] {
                assert!(strong_labels >= camal_labels * 16);
            }
        }
    }
}
