//! Fig. 10 (RQ5): training strongly supervised baselines on CamAL soft
//! labels. CamAL is trained on possession labels (the EDF Weak regime), its
//! per-timestep outputs become soft labels for the submetered training
//! houses, and each baseline is trained on a mix of `k` strong-labeled
//! houses plus soft labels for the rest — versus strong labels only.

use crate::experiments::fig8::possession_case_data;
use crate::output::{f3, Table};
use crate::runner::{build_case_data, case_avg_power, evaluate_frame_model, Case, Scale};
use nilm_data::appliance::ApplianceKind;
use nilm_data::templates::DatasetId;
use nilm_data::windows::WindowSet;
use nilm_models::baselines::BaselineKind;
use nilm_models::train_soft;

/// Per-house partition of training windows.
fn houses_of(set: &WindowSet) -> Vec<usize> {
    let mut houses: Vec<usize> = set.windows.iter().map(|w| w.house_id).collect();
    houses.sort_unstable();
    houses.dedup();
    houses
}

/// Runs the soft-label augmentation study.
pub fn run(scale: &Scale) -> Table {
    let case = Case { dataset: DatasetId::EdfEv, appliance: ApplianceKind::ElectricVehicle };
    let survey_id = if scale.name == "smoke" { DatasetId::EdfEv } else { DatasetId::EdfWeak };

    // CamAL trained with possession labels (or per-subsequence weak labels
    // in the smoke preset, where the survey dataset is skipped for speed).
    let (_, strong_data) = build_case_data(&case, scale);
    let mut camal = if survey_id == DatasetId::EdfEv {
        camal::CamalModel::train(
            &scale.camal_config(),
            &strong_data.train,
            &strong_data.val,
            scale.threads,
        )
    } else {
        let poss = possession_case_data(&case, survey_id, scale);
        camal::CamalModel::train(&scale.camal_config(), &poss.train, &poss.val, scale.threads)
    };

    // Soft labels for every strong training window.
    let soft = camal.soft_labels(&strong_data.train, 16);
    let houses = houses_of(&strong_data.train);
    let strong_counts: Vec<usize> = match scale.name {
        "smoke" => vec![0, houses.len() / 2],
        _ => vec![0, houses.len() / 4, houses.len() / 2, houses.len()],
    };
    let kinds: &[BaselineKind] = if scale.name == "smoke" {
        &[BaselineKind::TpNilm]
    } else {
        &[
            BaselineKind::TpNilm,
            BaselineKind::BiGru,
            BaselineKind::CrnnStrong,
            BaselineKind::UnetNilm,
            BaselineKind::TransNilm,
        ]
    };

    let mut table = Table::new(
        "Fig. 10 — baselines trained on CamAL soft labels (EDF EV)",
        &["method", "strong_houses", "soft_houses", "regime", "f1"],
    );
    let avg_power = case_avg_power(&case);
    for &k in &strong_counts {
        let strong_houses: std::collections::BTreeSet<usize> =
            houses.iter().take(k).copied().collect();
        // Targets: ground truth for strong houses, CamAL soft labels else.
        let mixed_targets: Vec<Vec<f32>> = strong_data
            .train
            .windows
            .iter()
            .zip(&soft)
            .map(|(w, s)| {
                if strong_houses.contains(&w.house_id) {
                    w.status.iter().map(|&b| b as f32).collect()
                } else {
                    s.clone()
                }
            })
            .collect();
        // Strong-only subset for the comparison line.
        let strong_only_idx: Vec<usize> = strong_data
            .train
            .windows
            .iter()
            .enumerate()
            .filter(|(_, w)| strong_houses.contains(&w.house_id))
            .map(|(i, _)| i)
            .collect();
        let strong_only = WindowSet {
            windows: strong_only_idx
                .iter()
                .map(|&i| strong_data.train.windows[i].clone())
                .collect(),
        };

        for &kind in kinds {
            let cfg = scale.train_config();
            // Strong + soft mix.
            let mut rng = nilm_tensor::init::rng(scale.seed ^ (k as u64) << 8);
            let mut model = kind.build(&mut rng, scale.width_div);
            let _ = train_soft(model.as_mut(), &strong_data.train, &mixed_targets, &cfg);
            let report = evaluate_frame_model(model.as_mut(), &strong_data.test, avg_power);
            table.push_row(vec![
                kind.name().to_string(),
                k.to_string(),
                (houses.len() - k).to_string(),
                "strong+soft".to_string(),
                f3(report.localization.f1),
            ]);
            // Strong labels only (skipped at k=0: nothing to train on).
            if !strong_only.is_empty() {
                let mut rng = nilm_tensor::init::rng(scale.seed ^ (k as u64) << 9);
                let mut model = kind.build(&mut rng, scale.width_div);
                let _ = nilm_models::train_strong(model.as_mut(), &strong_only, &cfg);
                let report = evaluate_frame_model(model.as_mut(), &strong_data.test, avg_power);
                table.push_row(vec![
                    kind.name().to_string(),
                    k.to_string(),
                    "0".to_string(),
                    "strong only".to_string(),
                    f3(report.localization.f1),
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_label_study_produces_both_regimes() {
        let mut s = Scale::smoke();
        s.epochs = 1;
        s.kernels = vec![5];
        s.n_ensemble = 1;
        let table = run(&s);
        let regimes: std::collections::BTreeSet<String> =
            table.rows.iter().map(|r| r[3].clone()).collect();
        assert!(regimes.contains("strong+soft"));
        // k=0 has no strong-only row; the half split adds one.
        assert!(regimes.contains("strong only"));
        for row in &table.rows {
            let f1: f64 = row[4].parse().unwrap();
            assert!((0.0..=1.0).contains(&f1));
        }
    }
}
