//! One module per table/figure of the paper's evaluation section.

pub mod extensions;
pub mod fig10;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table2;
pub mod table3;
pub mod table4;
