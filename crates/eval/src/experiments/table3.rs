//! Table III: CamAL versus CRNN-Weak (the other weakly supervised method)
//! with the full weak-label budget, reporting F1 / MAE / RMSE / MR per case
//! plus the cross-case average row.

use crate::output::{f1 as fmt1, f3, Table};
use crate::runner::{all_cases, build_case_data, run_baseline, run_camal, smoke_cases, Scale};
use nilm_models::baselines::BaselineKind;

/// Accumulates the paper's "Avg." row.
#[derive(Default)]
struct Averager {
    f1: f64,
    mae: f64,
    rmse: f64,
    mr: f64,
    n: usize,
}

impl Averager {
    fn push(&mut self, report: &camal::CaseReport) {
        self.f1 += report.localization.f1;
        self.mae += report.energy.mae;
        self.rmse += report.energy.rmse;
        self.mr += report.energy.matching_ratio;
        self.n += 1;
    }

    fn row(&self) -> [f64; 4] {
        let n = self.n.max(1) as f64;
        [self.f1 / n, self.mae / n, self.rmse / n, self.mr / n]
    }
}

/// Runs the weakly supervised comparison over `runs` random seeds
/// (the paper averages 5 runs).
pub fn run(scale: &Scale, runs: usize) -> Table {
    let cases = if scale.name == "smoke" { smoke_cases() } else { all_cases() };
    let mut table = Table::new(
        "Table III — weakly supervised comparison (CamAL vs CRNN Weak)",
        &[
            "case",
            "camal_f1",
            "camal_mae",
            "camal_rmse",
            "camal_mr",
            "crnn_f1",
            "crnn_mae",
            "crnn_rmse",
            "crnn_mr",
        ],
    );
    let mut avg_camal = Averager::default();
    let mut avg_crnn = Averager::default();
    for case in &cases {
        let mut c_f1 = 0.0;
        let mut c_mae = 0.0;
        let mut c_rmse = 0.0;
        let mut c_mr = 0.0;
        let mut w_f1 = 0.0;
        let mut w_mae = 0.0;
        let mut w_rmse = 0.0;
        let mut w_mr = 0.0;
        for run_i in 0..runs.max(1) {
            let mut s = scale.clone();
            s.seed = scale.seed.wrapping_add(run_i as u64 * 7919);
            let (_, data) = build_case_data(case, &s);
            let camal = run_camal(case, &data, &s, None);
            let crnn = run_baseline(BaselineKind::CrnnWeak, case, &data, &s);
            c_f1 += camal.report.localization.f1;
            c_mae += camal.report.energy.mae;
            c_rmse += camal.report.energy.rmse;
            c_mr += camal.report.energy.matching_ratio;
            w_f1 += crnn.report.localization.f1;
            w_mae += crnn.report.energy.mae;
            w_rmse += crnn.report.energy.rmse;
            w_mr += crnn.report.energy.matching_ratio;
        }
        let n = runs.max(1) as f64;
        let camal_rep = camal::CaseReport {
            localization: nilm_metrics::ClassificationReport { f1: c_f1 / n, ..Default::default() },
            energy: nilm_metrics::EnergyReport {
                mae: c_mae / n,
                rmse: c_rmse / n,
                matching_ratio: c_mr / n,
            },
            detection: Default::default(),
        };
        let crnn_rep = camal::CaseReport {
            localization: nilm_metrics::ClassificationReport { f1: w_f1 / n, ..Default::default() },
            energy: nilm_metrics::EnergyReport {
                mae: w_mae / n,
                rmse: w_rmse / n,
                matching_ratio: w_mr / n,
            },
            detection: Default::default(),
        };
        avg_camal.push(&camal_rep);
        avg_crnn.push(&crnn_rep);
        table.push_row(vec![
            case.label(),
            f3(camal_rep.localization.f1),
            fmt1(camal_rep.energy.mae),
            fmt1(camal_rep.energy.rmse),
            f3(camal_rep.energy.matching_ratio),
            f3(crnn_rep.localization.f1),
            fmt1(crnn_rep.energy.mae),
            fmt1(crnn_rep.energy.rmse),
            f3(crnn_rep.energy.matching_ratio),
        ]);
    }
    let a = avg_camal.row();
    let b = avg_crnn.row();
    table.push_row(vec![
        "Avg.".to_string(),
        f3(a[0]),
        fmt1(a[1]),
        fmt1(a[2]),
        f3(a[3]),
        f3(b[0]),
        fmt1(b[1]),
        fmt1(b[2]),
        f3(b[3]),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_table_has_case_rows_plus_average() {
        let mut scale = Scale::smoke();
        scale.epochs = 2;
        scale.kernels = vec![5];
        scale.n_ensemble = 1;
        let table = run(&scale, 1);
        // 4 smoke cases + the Avg. row.
        assert_eq!(table.rows.len(), 5);
        assert_eq!(table.rows.last().unwrap()[0], "Avg.");
        // All numeric cells parse.
        for row in &table.rows {
            for cell in &row[1..] {
                cell.parse::<f64>().unwrap();
            }
        }
    }
}
