//! Fig. 9: cost comparison — dollars and gCO2 per household (a) and yearly
//! storage for one million households (b). Pure arithmetic on the paper's
//! published cost model (see [`crate::cost`]).

use crate::cost::{
    strong_cost_usd, strong_gco2, strong_storage_tb_per_year, subsequence_cost_usd, weak_cost_usd,
    weak_gco2, weak_storage_tb_per_year, LabelingCosts, StorageModel,
};
use crate::output::{f3, Table};

/// Fig. 9(a): per-household monetary and carbon cost of each label regime.
pub fn run_costs() -> Table {
    let c = LabelingCosts::default();
    let mut table = Table::new(
        "Fig. 9(a) — estimated costs per household",
        &["label_regime", "dollars", "gCO2"],
    );
    table.push_row(vec![
        "per timestep (NILM, 1 year)".to_string(),
        f3(strong_cost_usd(&c, 1.0)),
        f3(strong_gco2(&c)),
    ]);
    table.push_row(vec![
        "per subsequence (weekly surveys, 1 year)".to_string(),
        f3(subsequence_cost_usd(&c, 52.0, 1.0)),
        f3(weak_gco2(&c) * 52.0),
    ]);
    table.push_row(vec![
        "per household (possession, CamAL)".to_string(),
        f3(weak_cost_usd(&c)),
        f3(weak_gco2(&c)),
    ]);
    table
}

/// Fig. 9(b): storage for 1M households, 5 appliances, 1-minute sampling.
pub fn run_storage() -> Table {
    let s = StorageModel::default();
    let mut table = Table::new(
        "Fig. 9(b) — storage cost, 1M households, 5 appliances, 1-min sampling",
        &["label_regime", "TB_per_year"],
    );
    let strong = strong_storage_tb_per_year(&s, 1_000_000, 5, 60);
    let weak = weak_storage_tb_per_year(&s, 1_000_000, 5, 60);
    table.push_row(vec!["per timestep (submeters)".to_string(), f3(strong)]);
    table.push_row(vec!["per household (possession)".to_string(), f3(weak)]);
    table.push_row(vec!["ratio".to_string(), f3(strong / weak)]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_table_orders_regimes() {
        let t = run_costs();
        let dollars: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        // Strong > subsequence surveys > possession.
        assert!(dollars[0] > dollars[1]);
        assert!(dollars[1] > dollars[2]);
        // The paper claims > 2 orders of magnitude strong vs possession.
        assert!(dollars[0] / dollars[2] >= 100.0);
    }

    #[test]
    fn storage_ratio_about_six() {
        let t = run_storage();
        let ratio: f64 = t.rows[2][1].parse().unwrap();
        assert!((5.0..7.0).contains(&ratio), "ratio {ratio}");
    }
}
