//! Fig. 8 (RQ4): the possession-only regime. CamAL and CRNN-Weak are trained
//! with one label per household (ownership answers) — on IDEAL's survey
//! houses (tested on the 39 submetered houses) and on EDF Weak (tested on
//! EDF EV). Results are compared against the per-subsequence weak regime
//! and the per-timestep strong regime.

use crate::output::{f3, Table};
use crate::runner::{
    build_case_data, build_dataset, case_avg_power, run_baseline, run_camal, Case, Scale,
};
use nilm_data::appliance::ApplianceKind;
use nilm_data::pipeline::{prepare_possession_case, CaseData, SplitConfig};
use nilm_data::templates::DatasetId;
use nilm_models::baselines::BaselineKind;

/// The two possession-only scenarios of §V-H.
fn scenarios(scale: &Scale) -> Vec<(Case, DatasetId)> {
    let mut v = vec![(
        Case { dataset: DatasetId::Ideal, appliance: ApplianceKind::Dishwasher },
        DatasetId::Ideal,
    )];
    if scale.name != "smoke" {
        // EDF: train on the survey dataset, test on the submetered one.
        v.push((
            Case { dataset: DatasetId::EdfEv, appliance: ApplianceKind::ElectricVehicle },
            DatasetId::EdfWeak,
        ));
    }
    v
}

/// Builds the possession-only training data (from `survey_id`) joined with
/// the ground-truth test windows of `case.dataset`.
pub fn possession_case_data(case: &Case, survey_id: DatasetId, scale: &Scale) -> CaseData {
    if survey_id == case.dataset {
        let ds = build_dataset(case.dataset, scale);
        prepare_possession_case(&ds, case.appliance, scale.window, &SplitConfig::default())
    } else {
        // Cross-dataset transfer (EDF Weak -> EDF EV): possession training
        // windows from the survey dataset, ground-truth tests from the
        // submetered dataset.
        let survey = build_dataset(survey_id, scale);
        let train_part =
            prepare_possession_case(&survey, case.appliance, scale.window, &SplitConfig::default());
        let (_, test_part) = build_case_data(case, scale);
        CaseData { train: train_part.train, val: train_part.val, test: test_part.test }
    }
}

/// Runs the label-regime comparison.
pub fn run(scale: &Scale) -> Table {
    let mut table = Table::new(
        "Fig. 8 — one label per household vs per subsequence vs per timestep",
        &["case", "method", "label_regime", "labels", "f1"],
    );
    for (case, survey_id) in scenarios(scale) {
        // Regime 1: one label per household (possession).
        let poss = possession_case_data(&case, survey_id, scale);
        if poss.train.positives() > 0 && poss.train.positives() < poss.train.len() {
            let camal = run_camal(&case, &poss, scale, None);
            // Household labels: one per training house, not per window.
            let houses: std::collections::BTreeSet<usize> =
                poss.train.windows.iter().map(|w| w.house_id).collect();
            table.push_row(vec![
                case.label(),
                "CamAL".to_string(),
                "per household".to_string(),
                houses.len().to_string(),
                f3(camal.report.localization.f1),
            ]);
            let crnn = run_baseline(BaselineKind::CrnnWeak, &case, &poss, scale);
            table.push_row(vec![
                case.label(),
                "CRNN Weak".to_string(),
                "per household".to_string(),
                houses.len().to_string(),
                f3(crnn.report.localization.f1),
            ]);
        }

        // Regime 2: one label per subsequence (the Table III setting).
        let (_, weak_data) = build_case_data(&case, scale);
        let camal_sub = run_camal(&case, &weak_data, scale, None);
        table.push_row(vec![
            case.label(),
            "CamAL".to_string(),
            "per subsequence".to_string(),
            camal_sub.labels_used.to_string(),
            f3(camal_sub.report.localization.f1),
        ]);

        // Regime 3: one label per timestep (strongly supervised baselines).
        let strong_kinds: &[BaselineKind] = if scale.name == "smoke" {
            &[BaselineKind::TpNilm]
        } else {
            &[BaselineKind::TpNilm, BaselineKind::BiGru, BaselineKind::UnetNilm]
        };
        for &kind in strong_kinds {
            let run = run_baseline(kind, &case, &weak_data, scale);
            table.push_row(vec![
                case.label(),
                kind.name().to_string(),
                "per timestep".to_string(),
                run.labels_used.to_string(),
                f3(run.report.localization.f1),
            ]);
        }
        let _ = case_avg_power(&case);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        let mut s = Scale::smoke();
        s.epochs = 1;
        s.kernels = vec![5];
        s.n_ensemble = 1;
        s
    }

    #[test]
    fn possession_training_has_no_strong_labels() {
        let scale = tiny_scale();
        let case = Case { dataset: DatasetId::Ideal, appliance: ApplianceKind::Dishwasher };
        let data = possession_case_data(&case, DatasetId::Ideal, &scale);
        assert!(data.train.windows.iter().all(|w| w.status.is_empty()));
        assert!(data.test.windows.iter().all(|w| !w.status.is_empty()));
    }

    #[test]
    fn regime_table_contains_all_three_regimes() {
        let table = run(&tiny_scale());
        let regimes: std::collections::BTreeSet<String> =
            table.rows.iter().map(|r| r[2].clone()).collect();
        assert!(regimes.contains("per subsequence"));
        assert!(regimes.contains("per timestep"));
        // Possession rows appear when the survey split has both classes
        // (true at every scale for IDEAL's 50%-forced ownership).
        assert!(regimes.contains("per household"));
    }

    #[test]
    fn household_label_count_is_much_smaller() {
        let table = run(&tiny_scale());
        let household: usize = table
            .rows
            .iter()
            .find(|r| r[2] == "per household")
            .map(|r| r[3].parse().unwrap())
            .unwrap();
        let timestep: usize = table
            .rows
            .iter()
            .find(|r| r[2] == "per timestep")
            .map(|r| r[3].parse().unwrap())
            .unwrap();
        assert!(timestep > household * 50, "timestep {timestep} vs household {household}");
    }
}
