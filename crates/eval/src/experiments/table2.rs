//! Table II: theoretical complexity and trainable-parameter counts,
//! measured on the paper-scale model constructors.

use crate::complexity::table2_rows;
use crate::output::Table;

/// Builds the Table II report.
pub fn run(seed: u64) -> Table {
    let mut table = Table::new(
        "Table II — theoretical complexity and trainable parameters (paper scale)",
        &["model", "theoretical_complexity", "trainable_params"],
    );
    for row in table2_rows(seed) {
        table.push_row(vec![row.model, row.complexity.to_string(), row.params.to_string()]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_renders_six_models() {
        let t = run(0);
        assert_eq!(t.rows.len(), 6);
        for row in &t.rows {
            let n: usize = row[2].parse().unwrap();
            assert!(n > 10_000, "{} too small: {n}", row[0]);
        }
    }
}
