//! Table II: theoretical complexity and trainable-parameter counts of every
//! method. Complexities are the paper's closed forms; parameter counts are
//! measured on the actual Rust models at paper scale.

use camal::DEFAULT_KERNELS;
use nilm_models::baselines::BaselineKind;
use nilm_models::resnet::{ResNet, ResNetConfig};
use nilm_tensor::layer::Layer;

/// One Table II row.
#[derive(Clone, Debug)]
pub struct ComplexityRow {
    /// Method name.
    pub model: String,
    /// The paper's theoretical complexity expression.
    pub complexity: &'static str,
    /// Measured trainable parameters of our implementation (paper scale).
    pub params: usize,
}

/// The paper's complexity expression per method.
pub fn complexity_expr(kind: BaselineKind) -> &'static str {
    match kind {
        BaselineKind::CrnnStrong | BaselineKind::CrnnWeak => "O(L·C²·K·(I·H + H²))",
        BaselineKind::BiGru => "O(L·C²·K·(I·H + H²))",
        BaselineKind::UnetNilm => "O(L·C²·K)",
        BaselineKind::TpNilm => "O(L·C²·K)",
        BaselineKind::TransNilm => "O(L²·D · L·C²·K·(I·H + H²))",
    }
}

/// Measures all Table II rows at paper scale. CamAL's count is per-ResNet ×
/// the default ensemble size, averaged over the kernel grid (the paper
/// reports `n_ResNet × 570K`).
pub fn table2_rows(seed: u64) -> Vec<ComplexityRow> {
    let mut rng = nilm_tensor::init::rng(seed);
    let mut rows = Vec::new();

    // CamAL: average parameter count over the kernel grid.
    let mut per_kernel = Vec::new();
    for &k in DEFAULT_KERNELS.iter() {
        let mut net = ResNet::new(&mut rng, ResNetConfig::paper(k));
        per_kernel.push(net.num_params());
    }
    let avg: usize = per_kernel.iter().sum::<usize>() / per_kernel.len();
    rows.push(ComplexityRow {
        model: "CamAL".to_string(),
        complexity: "O(n_ResNet · L·C²·K)",
        params: avg * 5, // n = 5 members
    });

    for &kind in BaselineKind::all() {
        if kind == BaselineKind::CrnnWeak {
            continue; // same network as CRNN strong; Table II lists one row
        }
        let mut model = kind.build(&mut rng, 1);
        let name = if kind == BaselineKind::CrnnStrong {
            "CRNN (Weak/Strong)".to_string()
        } else {
            kind.name().to_string()
        };
        rows.push(ComplexityRow {
            model: name,
            complexity: complexity_expr(kind),
            params: model.num_params(),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_six_rows() {
        let rows = table2_rows(0);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().any(|r| r.model == "CamAL"));
        assert!(rows.iter().any(|r| r.model == "CRNN (Weak/Strong)"));
    }

    #[test]
    fn relative_ordering_matches_paper() {
        // Paper Table II: TransNILM is the largest; BiGRU and TPNILM are the
        // smallest single models; CamAL's ensemble is mid-pack.
        let rows = table2_rows(1);
        let get = |name: &str| rows.iter().find(|r| r.model.starts_with(name)).unwrap().params;
        let trans = get("TransNILM");
        assert!(trans > get("CRNN"));
        assert!(trans > get("BiGRU"));
        assert!(trans > get("TPNILM"));
        assert!(get("Unet-NILM") > get("BiGRU"));
    }

    #[test]
    fn camal_per_resnet_count_is_paper_order() {
        // Paper: ~570K per ResNet. Ours should be within a factor of ~2.
        let rows = table2_rows(2);
        let camal = rows.iter().find(|r| r.model == "CamAL").unwrap().params;
        let per_net = camal / 5;
        assert!((250_000..1_200_000).contains(&per_net), "per-ResNet {per_net}");
    }
}
