//! The cost model of Fig. 9 (§V-H.2): monetary, carbon and storage costs of
//! collecting strong (submetered) labels versus weak (survey) labels. All
//! constants come from the paper's text.

/// Per-household costs of the three labeling strategies.
#[derive(Clone, Copy, Debug)]
pub struct LabelingCosts {
    /// Up-front sensor installation cost, dollars per household.
    pub sensor_install_usd: f64,
    /// Yearly sensor maintenance, dollars per household per year.
    pub sensor_maintenance_usd_per_year: f64,
    /// One questionnaire, dollars per household.
    pub survey_usd: f64,
    /// Technician truck-roll CO2 per instrumented household, grams.
    pub truck_roll_gco2: f64,
    /// One website visit (answering the survey), grams CO2.
    pub website_visit_gco2: f64,
}

impl Default for LabelingCosts {
    /// Constants quoted in §V-H.2: $1000 install + $1500/yr maintenance vs
    /// $10 survey; 2134 gCO2 truck roll (97 g/km × 22 km, return) vs
    /// 4.62 gCO2 website visit.
    fn default() -> Self {
        LabelingCosts {
            sensor_install_usd: 1000.0,
            sensor_maintenance_usd_per_year: 1500.0,
            survey_usd: 10.0,
            truck_roll_gco2: 2134.0,
            website_visit_gco2: 4.62,
        }
    }
}

/// The storage model: strong labels record one 8-byte BIGINT per appliance
/// per timestamp; weak labels store one 10-byte VARCHAR possession answer
/// per appliance. The aggregate signal is stored in both regimes.
#[derive(Clone, Copy, Debug)]
pub struct StorageModel {
    /// Bytes per recorded timestamp (BIGINT).
    pub bytes_per_sample: u64,
    /// Bytes per possession answer (VARCHAR(10)).
    pub bytes_per_possession: u64,
}

impl Default for StorageModel {
    fn default() -> Self {
        StorageModel { bytes_per_sample: 8, bytes_per_possession: 10 }
    }
}

/// Dollars per household for `years` of strong labeling.
pub fn strong_cost_usd(c: &LabelingCosts, years: f64) -> f64 {
    c.sensor_install_usd + c.sensor_maintenance_usd_per_year * years
}

/// Dollars per household for weak (possession) labeling.
pub fn weak_cost_usd(c: &LabelingCosts) -> f64 {
    c.survey_usd
}

/// Dollars per household for per-subsequence weak labels gathered by
/// recurring surveys (`surveys_per_year`, e.g. weekly = 52).
pub fn subsequence_cost_usd(c: &LabelingCosts, surveys_per_year: f64, years: f64) -> f64 {
    c.survey_usd * surveys_per_year * years
}

/// Grams of CO2 per household for strong labeling (one truck roll).
pub fn strong_gco2(c: &LabelingCosts) -> f64 {
    c.truck_roll_gco2
}

/// Grams of CO2 per household for weak labeling (one website visit).
pub fn weak_gco2(c: &LabelingCosts) -> f64 {
    c.website_visit_gco2
}

/// Terabytes per year to store strong labels for `households` homes with
/// `appliances` submeters sampling every `sample_interval_s` seconds,
/// including the aggregate channel.
pub fn strong_storage_tb_per_year(
    s: &StorageModel,
    households: u64,
    appliances: u64,
    sample_interval_s: u64,
) -> f64 {
    let samples_per_year = 365 * 24 * 3600 / sample_interval_s.max(1);
    // Aggregate + one channel per appliance.
    let bytes = households * (appliances + 1) * samples_per_year * s.bytes_per_sample;
    bytes as f64 / 1e12
}

/// Terabytes per year with weak labels: aggregate channel plus one
/// possession VARCHAR per appliance.
pub fn weak_storage_tb_per_year(
    s: &StorageModel,
    households: u64,
    appliances: u64,
    sample_interval_s: u64,
) -> f64 {
    let samples_per_year = 365 * 24 * 3600 / sample_interval_s.max(1);
    let bytes =
        households * (samples_per_year * s.bytes_per_sample + appliances * s.bytes_per_possession);
    bytes as f64 / 1e12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_monetary_gap_is_two_orders_of_magnitude() {
        let c = LabelingCosts::default();
        let strong = strong_cost_usd(&c, 1.0); // $2500 for one year
        let weak = weak_cost_usd(&c); // $10
        assert_eq!(strong, 2500.0);
        assert!(strong / weak >= 100.0, "gap {}", strong / weak);
    }

    #[test]
    fn paper_quoted_carbon_gap() {
        let c = LabelingCosts::default();
        assert!((strong_gco2(&c) / weak_gco2(&c) - 461.9) < 462.0); // ~462x
        assert!(strong_gco2(&c) / weak_gco2(&c) > 100.0);
    }

    #[test]
    fn storage_matches_paper_figure9b() {
        // Paper: 1M households, 5 appliances, 1-minute sampling ->
        // ~15 TB/year more for strong labels, about 6x the weak cost.
        let s = StorageModel::default();
        let strong = strong_storage_tb_per_year(&s, 1_000_000, 5, 60);
        let weak = weak_storage_tb_per_year(&s, 1_000_000, 5, 60);
        assert!(strong > 20.0 && strong < 30.0, "strong {strong} TB");
        let ratio = strong / weak;
        assert!((5.0..7.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn subsequence_surveys_sit_between() {
        let c = LabelingCosts::default();
        let weekly = subsequence_cost_usd(&c, 52.0, 1.0);
        assert!(weekly > weak_cost_usd(&c));
        assert!(weekly < strong_cost_usd(&c, 1.0));
    }
}
