//! Shared logic of the serving binaries (`camal_serve`, `camal_fleet`) and
//! of `run_all`'s serving smoke gates.
//!
//! The single-appliance path (train → checkpoint → reload → stream) and the
//! fleet path (train a per-appliance zoo → registry → shared-pass scheduler)
//! live here as library functions so the "run everything" driver can invoke
//! them in-process instead of shelling out to sibling binaries. Every demo
//! emits a [`crate::json`]-validated JSON report under the results
//! directory.

use camal::fleet::{serve_fleet, FleetConfig, FleetResult};
use camal::registry::{ModelKey, ModelRegistry};
use camal::stream::{serve, HouseholdSeries, StreamConfig};
use camal::CamalModel;
use nilm_data::appliance::ApplianceKind;
use nilm_data::generator::{generate_fleet_scenario, generate_house, SimConfig};
use nilm_data::preprocess::{forward_fill, resample, slice_windows};
use nilm_data::series::TimeSeries;
use nilm_data::templates::{refit, template, DatasetId};
use nilm_data::windows::WindowSet;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use crate::json::JsonValue;
use crate::runner::{build_case_data, case_avg_power, Case, Scale};

/// Appliance of the single-appliance `camal_serve` demo.
pub const SERVE_APPLIANCE: ApplianceKind = ApplianceKind::Kettle;

/// Returns the value following `flag` in `args`, if present.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

/// Parses the numeric value following `flag`, defaulting when absent.
pub fn arg_usize(args: &[String], flag: &str, default: usize) -> usize {
    arg_value(args, flag).map(|v| v.parse().expect("numeric flag")).unwrap_or(default)
}

/// Repeats every sample so a 60 s simulator series becomes e.g. a 30 s
/// feed — the shape a higher-frequency meter would deliver. The streaming
/// preprocessing immediately resamples it back down to the model step.
pub fn upsample_repeat(s: &TimeSeries, target_step_s: u32) -> TimeSeries {
    assert!(target_step_s > 0 && s.step_s % target_step_s == 0, "target must divide source step");
    let ratio = (s.step_s / target_step_s) as usize;
    let mut out = Vec::with_capacity(s.len() * ratio);
    for &v in &s.values {
        out.extend(std::iter::repeat_n(v, ratio));
    }
    TimeSeries::new(out, target_step_s)
}

/// Simulates `n` households (all owning the target appliance) as
/// month-scale series at `input_step_s`.
pub fn simulated_households(
    n: usize,
    days: usize,
    input_step_s: u32,
    seed: u64,
) -> Vec<HouseholdSeries> {
    let owned: BTreeSet<ApplianceKind> =
        [SERVE_APPLIANCE, ApplianceKind::Dishwasher].into_iter().collect();
    let sim = SimConfig { days, ..SimConfig::default() };
    (0..n)
        .map(|i| HouseholdSeries {
            id: format!("house-{i}"),
            series: upsample_repeat(&generate_house(i, &owned, &sim, seed).aggregate, input_step_s),
        })
        .collect()
}

/// Validates `doc` and writes it as `<name>.json` under the results dir.
pub fn write_summary(doc: &JsonValue, args: &[String], name: &str) {
    let dir = crate::results_dir(args);
    std::fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join(format!("{name}.json"));
    let text = doc.to_pretty();
    crate::json::validate(&text).expect("emitted summary must be valid JSON");
    std::fs::write(&path, &text).expect("write summary");
    println!("wrote {} (validated)", path.display());
}

// ---------------------------------------------------------------------------
// Single-appliance service (`camal_serve`)
// ---------------------------------------------------------------------------

/// Default checkpoint path of the single-appliance demo.
pub fn serve_ckpt_path(args: &[String]) -> PathBuf {
    arg_value(args, "--ckpt")
        .map(PathBuf::from)
        .unwrap_or_else(|| crate::results_dir(args).join("camal_kettle.ckpt"))
}

/// Trains CamAL on the Refit kettle case at `scale` — sweeping the mixed
/// ResNet + TransApp candidate grid, so the served checkpoint can hold a
/// heterogeneous ensemble — and writes a checkpoint at `path`. Returns the
/// trained model.
pub fn train_model(scale: &Scale, path: &Path) -> CamalModel {
    let case = Case { dataset: DatasetId::Refit, appliance: SERVE_APPLIANCE };
    println!("training CamAL ({}) on {} ...", scale.name, case.label());
    let (_, data) = build_case_data(&case, scale);
    let mut model =
        CamalModel::train(&scale.mixed_camal_config(), &data.train, &data.val, scale.threads);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create checkpoint directory");
    }
    model.save(path).expect("write checkpoint");
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!(
        "saved checkpoint {} ({} members, backbones {:?}, {} bytes)",
        path.display(),
        model.ensemble_size(),
        model.describe_members(),
        bytes
    );
    model
}

/// Asserts that a freshly loaded model reproduces the in-memory model
/// bit-for-bit on a probe batch.
pub fn verify_reload(trained: &mut CamalModel, loaded: &mut CamalModel, scale: &Scale) {
    let probe_house = generate_house(
        900,
        &[SERVE_APPLIANCE].into_iter().collect(),
        &SimConfig { days: 2, missing_rate: 0.0, ..SimConfig::default() },
        0xBEEF,
    );
    let tmpl = refit();
    let agg = forward_fill(&resample(&probe_house.aggregate, tmpl.step_s), tmpl.max_ffill_s);
    let set = WindowSet::new(slice_windows(&agg, None, 500.0, scale.window, 0, false));
    assert!(!set.is_empty(), "probe produced no windows");
    let idx: Vec<usize> = (0..set.len().min(8)).collect();
    let x = set.batch_inputs(&idx);
    let a = trained.localize_batch(&x);
    let b = loaded.localize_batch(&x);
    let bits = |v: &[Vec<f32>]| -> Vec<Vec<u32>> {
        v.iter().map(|r| r.iter().map(|s| s.to_bits()).collect()).collect()
    };
    assert_eq!(a.status, b.status, "reloaded statuses differ");
    assert_eq!(bits(&a.scores), bits(&b.scores), "reloaded scores differ");
    assert_eq!(
        trained.detect_proba(&x).iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        loaded.detect_proba(&x).iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
        "reloaded detection probabilities differ"
    );
    println!("reload check: localize_batch is bit-identical after save -> load");
}

/// Asserts the stitched streaming output equals the windowed batch API on
/// the first household (pre-prior). Demo-mode only: the production `serve`
/// path must not pay for re-scoring a household.
fn verify_stream_equivalence(
    model: &mut CamalModel,
    household: &HouseholdSeries,
    timeline: &camal::stream::HouseholdTimeline,
    cfg: &StreamConfig,
) {
    let w = cfg.window;
    // Slice through the *training* pipeline's own window slicer; the
    // timeline's `scored_starts` says which windows streaming actually ran.
    let agg = forward_fill(&resample(&household.series, cfg.step_s), cfg.max_ffill_s);
    let set = WindowSet::new(slice_windows(&agg, None, 500.0, w, 0, false));
    assert_eq!(
        set.len(),
        timeline.scored_starts.len(),
        "streaming scored a different window set than slice_windows produces"
    );
    let loc = model.localize_set(&set, 16);
    for (si, &start) in timeline.scored_starts.iter().enumerate() {
        assert_eq!(
            &timeline.raw_status[start..start + w],
            &loc.status[si][..],
            "stream/batch divergence in window starting at sample {start}"
        );
    }
    println!(
        "equivalence check: {} streamed windows match the batch API exactly (pre-prior)",
        timeline.scored_starts.len()
    );
}

/// Streams simulated households through a loaded model and returns the
/// per-household JSON summary. `verify_equivalence` additionally re-scores
/// the first household through the windowed batch API (demo mode).
pub fn serve_households(
    model: &mut CamalModel,
    scale: &Scale,
    args: &[String],
    ckpt: &Path,
    verify_equivalence: bool,
) -> JsonValue {
    let houses = arg_usize(args, "--houses", 3);
    let days = arg_usize(args, "--days", 30);
    let input_step_s = arg_usize(args, "--input-step-s", 30) as u32;
    if houses == 0 || days == 0 || input_step_s == 0 {
        eprintln!("--houses, --days and --input-step-s must all be >= 1");
        std::process::exit(2);
    }
    let tmpl = refit();
    let households = simulated_households(houses, days, input_step_s, 0x5EBE);
    // The checkpoint records the window length the ensemble was trained at;
    // trust it over whatever scale flag this process happened to get.
    let window = match model.window() {
        0 => scale.window,
        w => {
            if w != scale.window {
                println!(
                    "note: checkpoint was trained at window {w}; ignoring scale window {}",
                    scale.window
                );
            }
            w
        }
    };
    let avg_power_w =
        case_avg_power(&Case { dataset: DatasetId::Refit, appliance: SERVE_APPLIANCE });
    let mut cfg = StreamConfig::for_appliance(window, tmpl.step_s, SERVE_APPLIANCE, avg_power_w);
    cfg.max_ffill_s = tmpl.max_ffill_s;
    println!(
        "serving {houses} households x {days} days @ {input_step_s} s input ({} samples each) ...",
        households[0].series.len()
    );
    let start = std::time::Instant::now();
    let timelines = serve(model, &households, &cfg);
    let secs = start.elapsed().as_secs_f64();
    let total_windows: usize = timelines.iter().map(|t| t.windows_scored).sum();
    println!(
        "scored {total_windows} windows in {secs:.2} s ({:.0} windows/s)",
        total_windows as f64 / secs.max(1e-9)
    );

    if verify_equivalence {
        verify_stream_equivalence(model, &households[0], &timelines[0], &cfg);
    }

    let hh_json: Vec<JsonValue> = timelines
        .iter()
        .map(|tl| {
            JsonValue::object([
                ("id", JsonValue::String(tl.id.clone())),
                ("step_s", JsonValue::Number(tl.step_s as f64)),
                ("samples", JsonValue::Number(tl.status.len() as f64)),
                ("windows_total", JsonValue::Number(tl.windows_total as f64)),
                ("windows_scored", JsonValue::Number(tl.windows_scored as f64)),
                ("windows_detected", JsonValue::Number(tl.windows_detected as f64)),
                ("on_fraction", JsonValue::Number(tl.on_fraction())),
                ("activations", JsonValue::Number(tl.activations() as f64)),
                ("energy_wh", JsonValue::Number(tl.energy_wh())),
            ])
        })
        .collect();
    JsonValue::object([
        ("appliance", JsonValue::String(SERVE_APPLIANCE.name().to_string())),
        ("checkpoint", JsonValue::String(ckpt.display().to_string())),
        ("scale", JsonValue::String(scale.name.to_string())),
        ("days", JsonValue::Number(days as f64)),
        ("input_step_s", JsonValue::Number(input_step_s as f64)),
        ("windows_per_second", JsonValue::Number(total_windows as f64 / secs.max(1e-9))),
        ("households", JsonValue::Array(hh_json)),
    ])
}

/// The full single-appliance demo: train, persist, reload, verify
/// bit-identity, stream, verify stream/batch equivalence, emit the
/// validated summary. This is what `camal_serve demo` and `run_all` run.
pub fn serve_demo(scale: &Scale, args: &[String]) {
    let ckpt = serve_ckpt_path(args);
    let mut trained = train_model(scale, &ckpt);
    let mut model =
        CamalModel::load(&ckpt).unwrap_or_else(|e| panic!("cannot load {}: {e}", ckpt.display()));
    verify_reload(&mut trained, &mut model, scale);
    let doc = serve_households(&mut model, scale, args, &ckpt, true);
    write_summary(&doc, args, "camal_serve");
}

// ---------------------------------------------------------------------------
// Multi-appliance fleet (`camal_fleet`)
// ---------------------------------------------------------------------------

/// The (dataset, appliance) pairs of the demo model zoo: three appliances
/// across two dataset templates, all sampled at 60 s so they can share one
/// fleet preprocessing pass.
pub fn fleet_zoo_keys() -> Vec<ModelKey> {
    vec![
        ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle),
        ModelKey::new(DatasetId::Refit, ApplianceKind::Microwave),
        ModelKey::new(DatasetId::UkDale, ApplianceKind::Dishwasher),
    ]
}

/// Directory the fleet zoo checkpoints live in (`--zoo` override).
pub fn fleet_zoo_dir(args: &[String]) -> PathBuf {
    arg_value(args, "--zoo")
        .map(PathBuf::from)
        .unwrap_or_else(|| crate::results_dir(args).join("fleet_zoo"))
}

/// Trains one CamAL model per [`fleet_zoo_keys`] entry at `scale` — each
/// over the mixed ResNet + TransApp candidate grid, so the zoo can select
/// heterogeneous ensembles — saving each as `<dataset>_<appliance>.ckpt`
/// under the zoo directory. Returns the trained models, keyed, for
/// demo-mode verification.
pub fn fleet_train_all(scale: &Scale, args: &[String]) -> Vec<(ModelKey, CamalModel)> {
    let zoo = fleet_zoo_dir(args);
    std::fs::create_dir_all(&zoo).expect("create zoo directory");
    let keys = fleet_zoo_keys();
    let mut out = Vec::with_capacity(keys.len());
    for key in keys {
        let case = Case { dataset: key.dataset, appliance: key.appliance };
        println!("training zoo model ({}) on {} ...", scale.name, case.label());
        let (_, data) = build_case_data(&case, scale);
        let mut model =
            CamalModel::train(&scale.mixed_camal_config(), &data.train, &data.val, scale.threads);
        let path = zoo.join(key.file_name());
        model.save(&path).expect("write zoo checkpoint");
        println!(
            "  saved {} ({} members, backbones {:?})",
            path.display(),
            model.ensemble_size(),
            model.describe_members()
        );
        out.push((key, model));
    }
    out
}

/// Builds the simulated multi-dataset household fleet the scheduler serves:
/// `houses_per_template` households from every template the zoo keys draw
/// from.
pub fn fleet_households(
    keys: &[ModelKey],
    houses_per_template: usize,
    days: usize,
    seed: u64,
) -> Vec<HouseholdSeries> {
    let mut datasets: Vec<DatasetId> = keys.iter().map(|k| k.dataset).collect();
    datasets.sort();
    datasets.dedup();
    generate_fleet_scenario(&datasets, houses_per_template, days, seed)
        .iter()
        .map(|fh| HouseholdSeries { id: fh.label(), series: fh.house.aggregate.clone() })
        .collect()
}

/// Asserts the fleet's output for `key` is bit-identical to running the
/// single-appliance streaming service with the same settings — the N=1
/// equivalence the fleet path is built on. Demo-mode only.
fn verify_fleet_equivalence(
    registry: &mut ModelRegistry,
    key: ModelKey,
    households: &[HouseholdSeries],
    fleet: &FleetResult,
    cfg: &FleetConfig,
) {
    let model = registry.get_mut(key).expect("verified key is registered");
    let stream_cfg = StreamConfig {
        window: model.window(),
        step_s: cfg.step_s,
        max_ffill_s: cfg.max_ffill_s,
        batch: cfg.batch,
        appliance: cfg.apply_priors.then_some(key.appliance),
        avg_power_w: template(key.dataset)
            .case(key.appliance)
            .map(|c| c.avg_power_w)
            .unwrap_or(1000.0),
    };
    let solo = serve(model, households, &stream_cfg);
    for (hi, tl) in solo.iter().enumerate() {
        let ftl = fleet.timeline(hi, key).expect("fleet covers every household");
        assert_eq!(ftl.raw_status, tl.raw_status, "fleet/serve divergence at household {hi}");
        assert_eq!(ftl.status, tl.status, "fleet/serve post-prior divergence at household {hi}");
        let bits = |v: &[f32]| v.iter().map(|p| p.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&ftl.power_w), bits(&tl.power_w));
        assert_eq!(bits(&ftl.detection_proba), bits(&tl.detection_proba));
    }
    println!(
        "equivalence check: fleet output for {key} matches camal::stream::serve bit-for-bit \
         across {} households",
        households.len()
    );
}

/// Serves the simulated fleet through the registry and returns the
/// validated JSON report document.
pub fn fleet_serve(
    registry: &mut ModelRegistry,
    scale: &Scale,
    args: &[String],
    verify_equivalence: bool,
) -> JsonValue {
    let keys = registry.keys();
    assert!(!keys.is_empty(), "the registry holds no models; run train-all first");
    let houses_per_template = arg_usize(args, "--houses", 2);
    let days = arg_usize(args, "--days", 3);
    let threads = arg_usize(args, "--threads", scale.threads);
    if houses_per_template == 0 || days == 0 {
        eprintln!("--houses and --days must be >= 1");
        std::process::exit(2);
    }
    // Every zoo template serves at its Table I step. One shared pass per
    // feed requires a single resolution, so reject zoos mixing sampling
    // steps (e.g. an Ideal 600 s model next to the 60 s REFIT/UKDALE ones):
    // checkpoints do not record their step, and scoring a model at the
    // wrong resolution degrades silently.
    let step_s = template(keys[0].dataset).step_s;
    for key in &keys {
        let s = template(key.dataset).step_s;
        assert_eq!(
            s,
            step_s,
            "zoo mixes sampling steps: {} runs at {s} s but {} runs at {step_s} s; \
             serve them as separate fleets",
            key.label(),
            keys[0].label()
        );
    }
    let cfg =
        FleetConfig { step_s, max_ffill_s: 3 * step_s, batch: 64, threads, apply_priors: true };
    let households = fleet_households(&keys, houses_per_template, days, 0xF1EE7);
    println!(
        "serving {} households x {days} days across {} appliance models ({} worker threads) ...",
        households.len(),
        keys.len(),
        threads
    );
    let fleet = serve_fleet(registry, &keys, &households, &cfg)
        .unwrap_or_else(|e| panic!("fleet pass failed: {e}"));
    let s = fleet.summary;
    println!(
        "scored {} windows/feed x {} appliances = {} inferences in {:.2} s ({:.0} windows/s, \
         {} shards)",
        s.feed_windows_scored,
        s.appliances,
        s.inferences,
        s.elapsed_s,
        s.windows_per_second,
        s.shards
    );

    if verify_equivalence {
        verify_fleet_equivalence(registry, keys[0], &households, &fleet, &cfg);
    }

    let manifest_json: Vec<JsonValue> = registry
        .manifest()
        .iter()
        .map(|m| {
            let members: Vec<JsonValue> = m
                .backbones
                .iter()
                .zip(&m.param_counts)
                .map(|(backbone, params)| {
                    JsonValue::object([
                        ("backbone", JsonValue::String(backbone.clone())),
                        ("params", JsonValue::Number(*params as f64)),
                    ])
                })
                .collect();
            JsonValue::object([
                ("key", JsonValue::String(m.key.label())),
                ("loaded", JsonValue::Bool(m.loaded)),
                ("window", JsonValue::Number(m.window as f64)),
                ("ensemble_size", JsonValue::Number(m.ensemble_size as f64)),
                ("members", JsonValue::Array(members)),
            ])
        })
        .collect();
    let hh_json: Vec<JsonValue> = fleet
        .households
        .iter()
        .map(|hh| {
            let per_appliance: BTreeMap<String, JsonValue> = fleet
                .appliances
                .iter()
                .zip(&hh.timelines)
                .map(|(key, tl)| {
                    (
                        key.label(),
                        JsonValue::object([
                            ("windows_detected", JsonValue::Number(tl.windows_detected as f64)),
                            ("on_fraction", JsonValue::Number(tl.on_fraction())),
                            ("activations", JsonValue::Number(tl.activations() as f64)),
                            ("energy_wh", JsonValue::Number(tl.energy_wh())),
                        ]),
                    )
                })
                .collect();
            JsonValue::object([
                ("id", JsonValue::String(hh.id.clone())),
                ("samples", JsonValue::Number(hh.timelines[0].status.len() as f64)),
                ("windows_scored", JsonValue::Number(hh.timelines[0].windows_scored as f64)),
                ("appliances", JsonValue::Object(per_appliance)),
            ])
        })
        .collect();
    let stats = registry.stats();
    JsonValue::object([
        ("scale", JsonValue::String(scale.name.to_string())),
        ("zoo", JsonValue::String(fleet_zoo_dir(args).display().to_string())),
        ("days", JsonValue::Number(days as f64)),
        ("step_s", JsonValue::Number(step_s as f64)),
        ("threads", JsonValue::Number(threads as f64)),
        ("models", JsonValue::Array(manifest_json)),
        (
            "registry_stats",
            JsonValue::object([
                ("hits", JsonValue::Number(stats.hits as f64)),
                ("loads", JsonValue::Number(stats.loads as f64)),
                ("evictions", JsonValue::Number(stats.evictions as f64)),
            ]),
        ),
        (
            "summary",
            JsonValue::object([
                ("households", JsonValue::Number(s.households as f64)),
                ("appliances", JsonValue::Number(s.appliances as f64)),
                ("window", JsonValue::Number(s.window as f64)),
                ("shards", JsonValue::Number(s.shards as f64)),
                ("feed_windows_total", JsonValue::Number(s.feed_windows_total as f64)),
                ("feed_windows_scored", JsonValue::Number(s.feed_windows_scored as f64)),
                ("inferences", JsonValue::Number(s.inferences as f64)),
                ("batches", JsonValue::Number(s.batches as f64)),
                ("elapsed_s", JsonValue::Number(s.elapsed_s)),
                ("windows_per_second", JsonValue::Number(s.windows_per_second)),
            ]),
        ),
        ("households", JsonValue::Array(hh_json)),
    ])
}

/// The full fleet demo: train the zoo, reload every model through the
/// registry (verifying checkpoint bit-stability), serve the simulated
/// fleet, verify the N=1 equivalence, and emit the validated report. This
/// is what `camal_fleet demo` and `run_all` run.
pub fn fleet_demo(scale: &Scale, args: &[String]) {
    let trained = fleet_train_all(scale, args);
    let zoo = fleet_zoo_dir(args);
    let mut registry = ModelRegistry::unbounded();
    let found = registry.register_dir(&zoo).expect("scan zoo directory");
    assert_eq!(found.len(), trained.len(), "registry must discover every trained checkpoint");
    // Reload check: the registry-loaded model re-serializes to the exact
    // bytes the trained model produces (persistence is bit-stable).
    for (key, mut model) in trained {
        let loaded = registry.get_mut(key).expect("registered model loads");
        assert_eq!(loaded.to_bytes(), model.to_bytes(), "{key}: reload is not bit-stable");
    }
    println!(
        "reload check: all {} zoo checkpoints are bit-stable through the registry",
        found.len()
    );
    let doc = fleet_serve(&mut registry, scale, args, true);
    write_summary(&doc, args, "camal_fleet");
}
