//! # nilm-eval
//!
//! The experiment harness: regenerates every table and figure of the CamAL
//! paper's evaluation section on the synthetic dataset templates. Each
//! experiment lives in [`experiments`] and is exposed through a binary
//! (`cargo run -p nilm-eval --release --bin <experiment> -- [--smoke|--quick|--full]`).
//!
//! | Experiment | Binary |
//! |---|---|
//! | Fig. 1 / Fig. 5 label sweep | `fig5_label_sweep` |
//! | Table II complexity | `table2_params` |
//! | Table III weak comparison | `table3_weak` |
//! | Fig. 6(a) window length | `fig6a_window_length` |
//! | Fig. 6(b) detection vs localization | `fig6b_det_vs_loc` |
//! | Fig. 6(c) ensemble size | `fig6c_n_resnets` |
//! | Table IV ablation | `table4_ablation` |
//! | Fig. 7 scalability | `fig7_scalability` |
//! | Fig. 8 possession only | `fig8_possession` |
//! | Fig. 9 costs | `fig9_costs` |
//! | Fig. 10 soft labels | `fig10_soft_labels` |
//!
//! Beyond the figures, [`serving`] backs the service demos: `camal_serve`
//! (checkpoint + single-appliance streaming) and `camal_fleet` (model-zoo
//! registry + multi-appliance shared-pass scheduler); [`gateway`] backs
//! `camal_gateway`, the networked HTTP gateway (`nilm_serve`) with its
//! socket-level loadgen. `run_all` drives every experiment and then
//! smoke-runs all three serving demos. REPRODUCING.md at the repo root
//! tabulates all binaries with runtimes and output schemas.
//!
//! ## Example
//!
//! Every experiment is parameterised by a [`runner::Scale`] preset, which
//! also derives the matching CamAL configuration:
//!
//! ```
//! use nilm_eval::runner::Scale;
//!
//! let scale = Scale::smoke();
//! let cfg = scale.camal_config();
//! assert_eq!(cfg.n_ensemble, scale.n_ensemble);
//! assert_eq!(cfg.kernels, scale.kernels);
//! ```

pub mod complexity;
pub mod cost;
pub mod experiments;
pub mod gateway;
pub mod json;
pub mod output;
pub mod runner;
pub mod serving;

use output::Table;
use std::path::PathBuf;

/// Parses `--only <case>` from CLI args.
pub fn parse_only(args: &[String]) -> Option<String> {
    args.iter().position(|a| a == "--only").and_then(|i| args.get(i + 1).cloned())
}

/// Results directory (override with `--out <dir>`).
pub fn results_dir(args: &[String]) -> PathBuf {
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Prints a table and saves it as CSV under the results directory.
pub fn emit(table: &Table, args: &[String], name: &str) {
    table.print();
    let dir = results_dir(args);
    match table.save_csv(&dir, name) {
        Ok(path) => println!("saved {}", path.display()),
        Err(e) => eprintln!("could not save CSV: {e}"),
    }
}
