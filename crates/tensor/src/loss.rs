//! Loss functions. Each returns `(scalar_loss, grad_wrt_input)` so training
//! loops can seed backpropagation directly.

use crate::activation::{sigmoid, softmax_rows};
use crate::tensor::Tensor;

/// Binary cross-entropy on logits (numerically stable, mean reduction).
///
/// `logits` and `targets` must have identical shapes; targets in `[0, 1]`
/// (soft labels welcome — RQ5 trains on CamAL's soft outputs).
pub fn bce_with_logits(logits: &Tensor, targets: &Tensor) -> (f32, Tensor) {
    assert_eq!(logits.shape(), targets.shape(), "bce shape mismatch");
    let n = logits.len().max(1) as f32;
    let mut loss = 0.0f64;
    let mut grad = Tensor::zeros(logits.shape());
    for i in 0..logits.len() {
        let x = logits.data()[i];
        let y = targets.data()[i];
        // log(1 + e^-|x|) + max(x, 0) - x*y  is the stable BCE-with-logits.
        let l = x.max(0.0) - x * y + (1.0 + (-x.abs()).exp()).ln();
        loss += l as f64;
        grad.data_mut()[i] = (sigmoid(x) - y) / n;
    }
    ((loss / n as f64) as f32, grad)
}

/// Binary cross-entropy on probabilities (mean reduction), clamped away from
/// 0/1 for stability. Prefer [`bce_with_logits`] when logits are available.
pub fn bce(probs: &Tensor, targets: &Tensor) -> (f32, Tensor) {
    assert_eq!(probs.shape(), targets.shape(), "bce shape mismatch");
    let n = probs.len().max(1) as f32;
    let eps = 1e-7f32;
    let mut loss = 0.0f64;
    let mut grad = Tensor::zeros(probs.shape());
    for i in 0..probs.len() {
        let p = probs.data()[i].clamp(eps, 1.0 - eps);
        let y = targets.data()[i];
        loss += -(y * p.ln() + (1.0 - y) * (1.0 - p).ln()) as f64;
        grad.data_mut()[i] = ((p - y) / (p * (1.0 - p))) / n;
    }
    ((loss / n as f64) as f32, grad)
}

/// Softmax cross-entropy for `[batch, classes]` logits against integer class
/// labels (mean reduction). This is the classification loss of the ResNet
/// detectors (2 classes: appliance absent/present).
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let (b, c) = logits.dims2();
    assert_eq!(b, labels.len(), "label count mismatch");
    let probs = softmax_rows(logits);
    let mut loss = 0.0f64;
    let mut grad = probs.clone();
    let inv_b = 1.0 / b.max(1) as f32;
    for (bi, &label) in labels.iter().enumerate() {
        assert!(label < c, "label {label} out of range for {c} classes");
        let p = probs.at2(bi, label).max(1e-12);
        loss += -(p.ln()) as f64;
        *grad.at2_mut(bi, label) -= 1.0;
    }
    grad.scale_inplace(inv_b);
    ((loss * inv_b as f64) as f32, grad)
}

/// Mean squared error (mean reduction).
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.len().max(1) as f32;
    let mut loss = 0.0f64;
    let mut grad = Tensor::zeros(pred.shape());
    for i in 0..pred.len() {
        let d = pred.data()[i] - target.data()[i];
        loss += (d * d) as f64;
        grad.data_mut()[i] = 2.0 * d / n;
    }
    ((loss / n as f64) as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_with_logits_matches_definition() {
        let logits = Tensor::from_slice(&[0.0]);
        let targets = Tensor::from_slice(&[1.0]);
        let (l, g) = bce_with_logits(&logits, &targets);
        assert!((l - (2.0f32).ln()).abs() < 1e-6); // -log(sigmoid(0)) = ln 2
        assert!((g.data()[0] - (-0.5)).abs() < 1e-6);
    }

    #[test]
    fn bce_with_logits_is_stable_at_extremes() {
        let logits = Tensor::from_slice(&[100.0, -100.0]);
        let targets = Tensor::from_slice(&[1.0, 0.0]);
        let (l, g) = bce_with_logits(&logits, &targets);
        assert!(l < 1e-6);
        assert!(g.all_finite());
    }

    #[test]
    fn bce_on_probs_agrees_with_logit_version() {
        let logits = Tensor::from_slice(&[0.3, -1.2, 2.0]);
        let targets = Tensor::from_slice(&[1.0, 0.0, 1.0]);
        let probs = logits.map(sigmoid);
        let (l1, _) = bce_with_logits(&logits, &targets);
        let (l2, _) = bce(&probs, &targets);
        assert!((l1 - l2).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, 10.0], &[2, 2]);
        let (l, g) = cross_entropy(&logits, &[0, 1]);
        assert!(l < 1e-4);
        assert!(g.norm() < 1e-4);
    }

    #[test]
    fn cross_entropy_uniform_is_log_classes() {
        let logits = Tensor::zeros(&[1, 4]);
        let (l, _) = cross_entropy(&logits, &[2]);
        assert!((l - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_sums_to_zero_per_row() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let (_, g) = cross_entropy(&logits, &[0]);
        let s: f32 = g.data().iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    fn mse_zero_for_identical() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let (l, g) = mse(&a, &a);
        assert_eq!(l, 0.0);
        assert!(g.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn soft_targets_are_accepted() {
        let logits = Tensor::from_slice(&[0.5, -0.5]);
        let targets = Tensor::from_slice(&[0.7, 0.2]);
        let (l, g) = bce_with_logits(&logits, &targets);
        assert!(l.is_finite() && g.all_finite());
    }
}
