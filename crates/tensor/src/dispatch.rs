//! Shape-keyed backend dispatch for the compute kernels.
//!
//! Three backends implement every hot operation (convolution, GEMM):
//!
//! - [`Backend::Naive`] — the scalar reference path (shifted-axpy
//!   convolution, scalar-microkernel GEMM). Always available, always the
//!   correctness oracle.
//! - [`Backend::Gemm`] — im2col + cache-blocked GEMM with the portable
//!   (auto-vectorized) microkernel; the training workhorse.
//! - [`Backend::Simd`] — the same lowering, but with explicit `std::arch`
//!   microkernels (AVX2/FMA on x86-64, NEON on aarch64) selected by runtime
//!   feature detection, plus a skinny-GEMM specialization for the
//!   `M ≤ 16` output-channel shapes small-batch inference emits. Falls back
//!   to the portable kernel on machines without the required ISA (see
//!   [`crate::simd::simd_available`]).
//!
//! Selection, from strongest to weakest:
//!
//! 1. a per-layer override ([`crate::conv::Conv1d::set_backend`]);
//! 2. a process-wide forced backend — [`set_forced_backend`] from code, or
//!    the `NILM_BACKEND` environment variable (`naive|gemm|simd`, anything
//!    else = auto) read once at first use;
//! 3. the **autotuner**: per shape key (operation, `m`, `n`, `k`, *and
//!    worker-thread count* — single-core picks different winners than a
//!    parallel fan-out), the first call races every candidate backend on the
//!    real workload and caches the winner for the life of the process.
//!
//! The autotuner only ever races candidates that produce **bit-identical**
//! results (callers must guarantee this; when FMA contraction makes the SIMD
//! path differ from the scalar chain — see [`crate::simd::simd_exact`] — the
//! SIMD backend is excluded from auto-selection and must be forced
//! explicitly), so which candidate wins can never change computed values.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One of the interchangeable compute implementations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Scalar reference path (the oracle).
    Naive,
    /// im2col + blocked GEMM with the portable microkernel.
    Gemm,
    /// Explicit SIMD microkernels behind runtime feature detection.
    Simd,
}

impl Backend {
    /// Every backend, in oracle-first order.
    pub fn all() -> [Backend; 3] {
        [Backend::Naive, Backend::Gemm, Backend::Simd]
    }

    /// Lower-case name used by `NILM_BACKEND` and benchmark artifacts.
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Naive => "naive",
            Backend::Gemm => "gemm",
            Backend::Simd => "simd",
        }
    }

    /// Parses a `NILM_BACKEND`-style name.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "naive" => Some(Backend::Naive),
            "gemm" => Some(Backend::Gemm),
            "simd" => Some(Backend::Simd),
            _ => None,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Programmatic process-wide override (`u8::MAX` = unset).
static FORCED: AtomicU8 = AtomicU8::new(u8::MAX);

fn encode(b: Option<Backend>) -> u8 {
    match b {
        None => 3,
        Some(Backend::Naive) => 0,
        Some(Backend::Gemm) => 1,
        Some(Backend::Simd) => 2,
    }
}

fn decode(v: u8) -> Option<Backend> {
    match v {
        0 => Some(Backend::Naive),
        1 => Some(Backend::Gemm),
        2 => Some(Backend::Simd),
        _ => None,
    }
}

/// The backend forced by the `NILM_BACKEND` environment variable, if any
/// (read once; `auto`, unset or unrecognized values force nothing).
pub fn env_backend() -> Option<Backend> {
    static ENV: OnceLock<Option<Backend>> = OnceLock::new();
    *ENV.get_or_init(|| std::env::var("NILM_BACKEND").ok().as_deref().and_then(Backend::parse))
}

/// Sets (or with `None`, clears) the process-wide forced backend. A set
/// value takes precedence over `NILM_BACKEND`; clearing restores the
/// environment override (if present) and autotuned selection otherwise.
pub fn set_forced_backend(backend: Option<Backend>) {
    FORCED.store(
        match backend {
            None => u8::MAX,
            some => encode(some),
        },
        Ordering::Relaxed,
    );
}

/// The process-wide forced backend: the programmatic override if set, else
/// the `NILM_BACKEND` environment variable, else `None` (= autotune).
pub fn forced_backend() -> Option<Backend> {
    let v = FORCED.load(Ordering::Relaxed);
    if v != u8::MAX {
        return decode(v);
    }
    env_backend()
}

/// Identity of one tuned problem. `threads` is part of the key because the
/// parallel fan-out changes which backend wins: a shape whose GEMM lowering
/// amortizes across a multi-thread row-block split can lose to the naive
/// path when the same shape runs on a single worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShapeKey {
    /// Operation tag (e.g. `"conv_fwd"`): different lowerings of the same
    /// `(m, n, k)` tune independently.
    pub op: &'static str,
    /// Output rows of the lowered GEMM.
    pub m: usize,
    /// Output columns of the lowered GEMM.
    pub n: usize,
    /// Inner (accumulation) dimension.
    pub k: usize,
    /// Worker threads available to the operation.
    pub threads: usize,
}

impl ShapeKey {
    /// Key for `op` at `(m, n, k)` with the current worker-pool width.
    pub fn with_current_threads(op: &'static str, m: usize, n: usize, k: usize) -> Self {
        ShapeKey { op, m, n, k, threads: rayon::current_num_threads() }
    }
}

/// Timed runs per candidate when autotuning (plus one untimed warm-up).
const AUTOTUNE_REPS: usize = 2;

/// Converts a [`ShapeKey`] + winning backend into the observability key
/// the cumulative kernel table is indexed by.
fn obs_key(key: ShapeKey, backend: Backend) -> nilm_obs::kernel::KernelKey {
    nilm_obs::kernel::KernelKey {
        op: key.op,
        m: key.m,
        n: key.n,
        k: key.k,
        threads: key.threads,
        backend: backend.as_str(),
    }
}

/// Runs one production kernel execution under observation: the elapsed
/// time lands in the cumulative per-`(op, shape, backend)` table
/// ([`nilm_obs::kernel`]) surfaced by the gateway's `/metrics` exporters,
/// and — when the calling thread carries a trace context (`NILM_TRACE=on`
/// inside a traced request) — a `"kernel"` child span naming
/// op/shape/backend is recorded under the enclosing stage span.
///
/// Kernel executions are coarse (one per layer forward), so the always-on
/// table costs one short mutex acquisition per call; the span path is
/// gated to a single relaxed atomic load when tracing is off.
pub fn observe<R>(key: ShapeKey, backend: Backend, run: impl FnOnce() -> R) -> R {
    let mut span = nilm_obs::trace::span("kernel");
    let start = Instant::now();
    let out = run();
    let dur_ns = start.elapsed().as_nanos() as u64;
    nilm_obs::kernel::record(obs_key(key, backend), dur_ns);
    if let Some(span) = span.as_mut() {
        span.set_detail(span_detail(key, backend));
    }
    out
}

/// The `"kernel"` span detail for a shape, interned so the trace hot path
/// formats each distinct `(shape, backend)` once per process and records a
/// `&'static str` thereafter. Shapes are bounded (the autotuner keys the
/// same space), so the leak is bounded too.
fn span_detail(key: ShapeKey, backend: Backend) -> &'static str {
    static DETAILS: OnceLock<Mutex<HashMap<(ShapeKey, Backend), &'static str>>> = OnceLock::new();
    let mut map = DETAILS.get_or_init(|| Mutex::new(HashMap::new())).lock().unwrap();
    map.entry((key, backend)).or_insert_with(|| {
        Box::leak(
            format!(
                "op={} m={} n={} k={} threads={} backend={}",
                key.op, key.m, key.n, key.k, key.threads, backend
            )
            .into_boxed_str(),
        )
    })
}

fn cache() -> &'static Mutex<HashMap<ShapeKey, Backend>> {
    static CACHE: OnceLock<Mutex<HashMap<ShapeKey, Backend>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The cached winner for `key`, if this shape has been tuned.
pub fn cached_choice(key: ShapeKey) -> Option<Backend> {
    cache().lock().unwrap().get(&key).copied()
}

/// Records `backend` as the winner for `key` (autotuning does this
/// automatically; exposed for tests and benchmarks).
pub fn record_choice(key: ShapeKey, backend: Backend) {
    cache().lock().unwrap().insert(key, backend);
}

/// Drops every tuned decision (tests / benchmarks re-tune from scratch).
pub fn clear_choices() {
    cache().lock().unwrap().clear();
}

/// Snapshot of the autotuner cache, sorted by key — the benchmark's
/// per-shape winner table.
pub fn tuned_entries() -> Vec<(ShapeKey, Backend)> {
    let mut entries: Vec<_> = cache().lock().unwrap().iter().map(|(k, v)| (*k, *v)).collect();
    entries.sort_by_key(|(k, _)| (k.op, k.m, k.n, k.k, k.threads));
    entries
}

/// Returns the cached winner for `key`, or races `candidates` to find it.
///
/// `run(backend)` must execute the real operation under `backend`; on a
/// cache miss every candidate runs once as warm-up plus `AUTOTUNE_REPS`
/// timed repetitions (minimum taken), the fastest is cached, and the caller
/// is left with the output of the *last* run. All candidates must produce
/// bit-identical output, so which one ran last is unobservable.
///
/// With a single candidate, or a cache hit, `run` is executed exactly once.
pub fn autotune(key: ShapeKey, candidates: &[Backend], mut run: impl FnMut(Backend)) -> Backend {
    assert!(!candidates.is_empty(), "autotune needs at least one candidate");
    if let Some(choice) = cached_choice(key) {
        observe(key, choice, || run(choice));
        return choice;
    }
    if candidates.len() == 1 {
        record_choice(key, candidates[0]);
        observe(key, candidates[0], || run(candidates[0]));
        return candidates[0];
    }
    let mut best = candidates[0];
    let mut best_elapsed = f64::INFINITY;
    for &candidate in candidates {
        run(candidate); // warm-up: page in scratch buffers, warm the caches
        let mut elapsed = f64::INFINITY;
        for _ in 0..AUTOTUNE_REPS {
            let start = Instant::now();
            run(candidate);
            elapsed = elapsed.min(start.elapsed().as_secs_f64());
        }
        if elapsed < best_elapsed {
            best_elapsed = elapsed;
            best = candidate;
        }
    }
    record_choice(key, best);
    // The race itself did real work once: account the winner's best rep in
    // the cumulative table so first-touch shapes aren't invisible. (No
    // span: the tuning race is measurement, not a request stage.)
    nilm_obs::kernel::record(obs_key(key, best), (best_elapsed * 1e9) as u64);
    // The caller's buffers currently hold the last candidate's output; all
    // candidates are bit-identical, so no final re-run is needed.
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_backend() {
        for b in Backend::all() {
            assert_eq!(Backend::parse(b.as_str()), Some(b));
        }
        assert_eq!(Backend::parse("auto"), None);
        assert_eq!(Backend::parse(""), None);
    }

    #[test]
    fn forced_backend_set_and_clear() {
        // Serialize against other tests touching the global through a lock
        // on the cache (cheap way to share one mutex).
        set_forced_backend(Some(Backend::Naive));
        assert_eq!(forced_backend(), Some(Backend::Naive));
        set_forced_backend(Some(Backend::Simd));
        assert_eq!(forced_backend(), Some(Backend::Simd));
        set_forced_backend(None);
        assert_eq!(forced_backend(), env_backend());
    }

    #[test]
    fn cache_is_keyed_on_thread_count_as_well_as_shape() {
        // Regression for the single-core-vs-fan-out mistuning: the same
        // (op, m, n, k) must tune independently per worker count.
        let one = ShapeKey { op: "test_threads", m: 8, n: 256, k: 40, threads: 1 };
        let four = ShapeKey { op: "test_threads", m: 8, n: 256, k: 40, threads: 4 };
        record_choice(one, Backend::Naive);
        record_choice(four, Backend::Simd);
        assert_eq!(cached_choice(one), Some(Backend::Naive));
        assert_eq!(cached_choice(four), Some(Backend::Simd));
        assert_ne!(one, four);
    }

    #[test]
    fn autotune_caches_the_winner_and_reuses_it() {
        let key = ShapeKey { op: "test_autotune", m: 3, n: 3, k: 3, threads: 1 };
        let mut runs = Vec::new();
        let choice = autotune(key, &[Backend::Naive, Backend::Gemm], |b| runs.push(b));
        // Both candidates ran (warm-up + timed reps each).
        assert!(runs.iter().any(|&b| b == Backend::Naive));
        assert!(runs.iter().any(|&b| b == Backend::Gemm));
        assert_eq!(cached_choice(key), Some(choice));
        // Second call: cache hit, exactly one run of the winner.
        runs.clear();
        let again = autotune(key, &[Backend::Naive, Backend::Gemm], |b| runs.push(b));
        assert_eq!(again, choice);
        assert_eq!(runs, vec![choice]);
    }

    #[test]
    fn single_candidate_skips_timing() {
        let key = ShapeKey { op: "test_single", m: 1, n: 1, k: 1, threads: 1 };
        let mut runs = 0;
        let choice = autotune(key, &[Backend::Naive], |_| runs += 1);
        assert_eq!(choice, Backend::Naive);
        assert_eq!(runs, 1);
    }
}
