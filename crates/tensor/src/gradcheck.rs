//! Numerical gradient checking: the correctness oracle for every manual
//! backward pass in this crate.
//!
//! The scheme: define `loss(x) = sum(layer.forward(x) * mask)` for a fixed
//! random `mask`. The analytic gradient of that loss with respect to the
//! layer input is `layer.backward(mask)`, and with respect to each parameter
//! it lands in `Param::grad`. Both are compared against central differences.

use crate::layer::{Layer, Mode};
use crate::tensor::Tensor;

/// Result of a gradient check: largest relative error observed.
#[derive(Debug, Clone, Copy)]
pub struct GradCheck {
    /// Max relative error on the input gradient.
    pub input_err: f32,
    /// Max relative error across all parameter gradients.
    pub param_err: f32,
}

fn rel_err(analytic: f32, numeric: f32) -> f32 {
    let denom = analytic.abs().max(numeric.abs()).max(1e-3);
    (analytic - numeric).abs() / denom
}

fn masked_loss(layer: &mut dyn Layer, x: &Tensor, mask: &Tensor, mode: Mode) -> f32 {
    let y = layer.forward(x, mode);
    assert_eq!(y.shape(), mask.shape(), "mask must match layer output shape");
    y.mul(mask).sum()
}

/// Checks the input and parameter gradients of `layer` at input `x`.
///
/// `mask` must match the layer's output shape. Uses central differences with
/// step `eps`. The layer must be deterministic under `mode` (run dropout in
/// `Mode::Eval` or with p=0).
pub fn check_layer(
    layer: &mut dyn Layer,
    x: &Tensor,
    mask: &Tensor,
    eps: f32,
    mode: Mode,
) -> GradCheck {
    // Analytic pass.
    layer.zero_grad();
    let _ = layer.forward(x, mode);
    let dx = layer.backward(mask);

    // Collect analytic parameter gradients.
    let mut param_grads: Vec<Vec<f32>> = Vec::new();
    layer.visit_params(&mut |p| param_grads.push(p.grad.data().to_vec()));

    // Numeric input gradient.
    let mut input_err = 0.0f32;
    let mut xp = x.clone();
    for i in 0..x.len() {
        let orig = xp.data()[i];
        xp.data_mut()[i] = orig + eps;
        let lp = masked_loss(layer, &xp, mask, mode);
        xp.data_mut()[i] = orig - eps;
        let lm = masked_loss(layer, &xp, mask, mode);
        xp.data_mut()[i] = orig;
        let numeric = (lp - lm) / (2.0 * eps);
        input_err = input_err.max(rel_err(dx.data()[i], numeric));
    }

    // Numeric parameter gradients.
    let mut param_err = 0.0f32;
    let n_params = param_grads.len();
    for pi in 0..n_params {
        let plen = param_grads[pi].len();
        for i in 0..plen {
            // Perturb parameter pi[i] via the visitor.
            fn perturb(layer: &mut dyn Layer, pi: usize, i: usize, delta: f32) {
                let mut idx = 0;
                layer.visit_params(&mut |p| {
                    if idx == pi {
                        p.value.data_mut()[i] += delta;
                    }
                    idx += 1;
                });
            }
            perturb(layer, pi, i, eps);
            let lp = masked_loss(layer, x, mask, mode);
            perturb(layer, pi, i, -2.0 * eps);
            let lm = masked_loss(layer, x, mask, mode);
            perturb(layer, pi, i, eps);
            let numeric = (lp - lm) / (2.0 * eps);
            param_err = param_err.max(rel_err(param_grads[pi][i], numeric));
        }
    }

    GradCheck { input_err, param_err }
}

/// Asserts both gradient errors are below `tol`.
pub fn assert_grads_close(
    layer: &mut dyn Layer,
    x: &Tensor,
    mask: &Tensor,
    eps: f32,
    tol: f32,
    mode: Mode,
) {
    let res = check_layer(layer, x, mask, eps, mode);
    assert!(res.input_err < tol, "input gradient mismatch: max rel err {} >= {tol}", res.input_err);
    assert!(
        res.param_err < tol,
        "parameter gradient mismatch: max rel err {} >= {tol}",
        res.param_err
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::{Gelu, ReLU, Sigmoid, Tanh};
    use crate::attention::{MultiHeadSelfAttention, TransformerEncoderLayer};
    use crate::conv::{Conv1d, Padding};
    use crate::init::{randn_tensor, rng, uniform_tensor};
    use crate::layer::{Residual, Sequential};
    use crate::linear::{Linear, TimeDistributed};
    use crate::norm::{BatchNorm1d, LayerNorm};
    use crate::pool::{AvgPool1d, GlobalAvgPool1d, MaxPool1d, Upsample1d, UpsampleMode};
    use crate::rnn::{BiGru, Gru};

    const EPS: f32 = 1e-2;
    const TOL: f32 = 2e-2;

    fn mask_like(shape: &[usize], seed: u64) -> Tensor {
        let mut r = rng(seed);
        uniform_tensor(&mut r, shape, -1.0, 1.0)
    }

    #[test]
    fn conv1d_same_gradients() {
        let mut r = rng(100);
        let mut conv = Conv1d::new(&mut r, 2, 3, 3, Padding::Same);
        let x = randn_tensor(&mut r, &[2, 2, 7], 1.0);
        let mask = mask_like(&[2, 3, 7], 1);
        assert_grads_close(&mut conv, &x, &mask, EPS, TOL, Mode::Eval);
    }

    #[test]
    fn conv1d_valid_stride2_dilated_gradients() {
        let mut r = rng(101);
        let mut conv = Conv1d::with_options(&mut r, 2, 2, 3, Padding::Valid, 2, 2, true);
        let x = randn_tensor(&mut r, &[1, 2, 12], 1.0);
        let t_out = conv.out_len(12);
        let mask = mask_like(&[1, 2, t_out], 2);
        assert_grads_close(&mut conv, &x, &mask, EPS, TOL, Mode::Eval);
    }

    #[test]
    fn conv1d_even_kernel_gradients() {
        let mut r = rng(102);
        let mut conv = Conv1d::new(&mut r, 1, 2, 4, Padding::Same);
        let x = randn_tensor(&mut r, &[1, 1, 9], 1.0);
        let mask = mask_like(&[1, 2, 9], 3);
        assert_grads_close(&mut conv, &x, &mask, EPS, TOL, Mode::Eval);
    }

    #[test]
    fn linear_gradients() {
        let mut r = rng(103);
        let mut l = Linear::new(&mut r, 4, 3);
        let x = randn_tensor(&mut r, &[5, 4], 1.0);
        let mask = mask_like(&[5, 3], 4);
        assert_grads_close(&mut l, &x, &mask, EPS, TOL, Mode::Eval);
    }

    #[test]
    fn time_distributed_gradients() {
        let mut r = rng(104);
        let mut l = TimeDistributed::new(&mut r, 3, 2);
        let x = randn_tensor(&mut r, &[2, 3, 4], 1.0);
        let mask = mask_like(&[2, 2, 4], 5);
        assert_grads_close(&mut l, &x, &mask, EPS, TOL, Mode::Eval);
    }

    #[test]
    fn activations_gradients() {
        let mut r = rng(105);
        let x = randn_tensor(&mut r, &[2, 2, 5], 1.0);
        let mask = mask_like(&[2, 2, 5], 6);
        // ReLU is non-differentiable at 0; random inputs avoid exact zeros.
        assert_grads_close(&mut ReLU::default(), &x, &mask, EPS, TOL, Mode::Eval);
        assert_grads_close(&mut Sigmoid::default(), &x, &mask, EPS, TOL, Mode::Eval);
        assert_grads_close(&mut Tanh::default(), &x, &mask, EPS, TOL, Mode::Eval);
        assert_grads_close(&mut Gelu::default(), &x, &mask, EPS, TOL, Mode::Eval);
    }

    #[test]
    fn batchnorm_train_gradients() {
        let mut r = rng(106);
        let mut bn = BatchNorm1d::new(3);
        let x = randn_tensor(&mut r, &[2, 3, 4], 1.0);
        let mask = mask_like(&[2, 3, 4], 7);
        // Train mode: stats recomputed from the same batch each call, so the
        // loss is a deterministic function of the input.
        assert_grads_close(&mut bn, &x, &mask, EPS, 5e-2, Mode::Train);
    }

    #[test]
    fn layernorm_gradients() {
        let mut r = rng(107);
        let mut ln = LayerNorm::new(4);
        let x = randn_tensor(&mut r, &[2, 4, 3], 1.0);
        let mask = mask_like(&[2, 4, 3], 8);
        assert_grads_close(&mut ln, &x, &mask, EPS, 5e-2, Mode::Eval);
    }

    #[test]
    fn pooling_gradients() {
        let mut r = rng(108);
        let x = randn_tensor(&mut r, &[1, 2, 8], 1.0);
        let mut mp = MaxPool1d::new(2);
        assert_grads_close(&mut mp, &x, &mask_like(&[1, 2, 4], 9), EPS, TOL, Mode::Eval);
        let mut ap = AvgPool1d::new(2);
        assert_grads_close(&mut ap, &x, &mask_like(&[1, 2, 4], 10), EPS, TOL, Mode::Eval);
        let mut gap = GlobalAvgPool1d::default();
        assert_grads_close(&mut gap, &x, &mask_like(&[1, 2], 11), EPS, TOL, Mode::Eval);
    }

    #[test]
    fn upsample_gradients() {
        let mut r = rng(109);
        let x = randn_tensor(&mut r, &[1, 2, 4], 1.0);
        let mut un = Upsample1d::new(2, UpsampleMode::Nearest);
        assert_grads_close(&mut un, &x, &mask_like(&[1, 2, 8], 12), EPS, TOL, Mode::Eval);
        let mut ul = Upsample1d::new(2, UpsampleMode::Linear);
        assert_grads_close(&mut ul, &x, &mask_like(&[1, 2, 8], 13), EPS, TOL, Mode::Eval);
    }

    #[test]
    fn gru_gradients() {
        let mut r = rng(110);
        let mut gru = Gru::new(&mut r, 2, 3);
        let x = randn_tensor(&mut r, &[2, 2, 4], 1.0);
        let mask = mask_like(&[2, 3, 4], 14);
        assert_grads_close(&mut gru, &x, &mask, EPS, 5e-2, Mode::Eval);
    }

    #[test]
    fn bigru_gradients() {
        let mut r = rng(111);
        let mut g = BiGru::new(&mut r, 2, 2);
        let x = randn_tensor(&mut r, &[1, 2, 4], 1.0);
        let mask = mask_like(&[1, 4, 4], 15);
        assert_grads_close(&mut g, &x, &mask, EPS, 5e-2, Mode::Eval);
    }

    #[test]
    fn attention_gradients() {
        let mut r = rng(112);
        let mut attn = MultiHeadSelfAttention::new(&mut r, 4, 2);
        let x = randn_tensor(&mut r, &[1, 4, 3], 0.5);
        let mask = mask_like(&[1, 4, 3], 16);
        assert_grads_close(&mut attn, &x, &mask, EPS, 5e-2, Mode::Eval);
    }

    #[test]
    fn transformer_encoder_gradients() {
        let mut r = rng(113);
        let mut enc = TransformerEncoderLayer::new(&mut r, 4, 2, 8);
        let x = randn_tensor(&mut r, &[1, 4, 3], 0.5);
        let mask = mask_like(&[1, 4, 3], 17);
        assert_grads_close(&mut enc, &x, &mask, EPS, 8e-2, Mode::Eval);
    }

    #[test]
    fn residual_and_sequential_gradients() {
        let mut r = rng(114);
        let main = Sequential::new()
            .push(Conv1d::new(&mut r, 2, 2, 3, Padding::Same))
            .push(Tanh::default());
        let mut res = Residual::new(main);
        let x = randn_tensor(&mut r, &[1, 2, 6], 1.0);
        let mask = mask_like(&[1, 2, 6], 18);
        assert_grads_close(&mut res, &x, &mask, EPS, TOL, Mode::Eval);
    }
}
