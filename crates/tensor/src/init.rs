//! Weight initialization and the random-number helpers shared by the
//! workspace (Gaussian via Box–Muller, Poisson via Knuth) so that no
//! distribution crate is needed.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a seed. All experiments seed explicitly
/// so that tables and figures are reproducible run to run.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples one standard-normal value using the Box–Muller transform.
pub fn randn(rng: &mut impl Rng) -> f32 {
    // Guard against log(0).
    let u1: f32 = rng.random::<f32>().max(f32::MIN_POSITIVE);
    let u2: f32 = rng.random::<f32>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Samples a Poisson-distributed count with mean `lambda` (Knuth's method;
/// adequate for the small rates used by the usage simulator).
pub fn poisson(rng: &mut impl Rng, lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        // Degenerate guard for very large lambda; the simulator never needs it.
        if k > 10_000 {
            return k;
        }
    }
}

/// Tensor of i.i.d. N(0, std^2) values.
pub fn randn_tensor(rng: &mut impl Rng, shape: &[usize], std: f32) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| randn(rng) * std).collect();
    Tensor::from_vec(data, shape)
}

/// Tensor of i.i.d. U(lo, hi) values.
pub fn uniform_tensor(rng: &mut impl Rng, shape: &[usize], lo: f32, hi: f32) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.random_range(lo..hi)).collect();
    Tensor::from_vec(data, shape)
}

/// He (Kaiming) normal initialization for layers followed by ReLU.
/// `fan_in` is the number of input connections per output unit.
pub fn he_normal(rng: &mut impl Rng, shape: &[usize], fan_in: usize) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    randn_tensor(rng, shape, std)
}

/// Xavier (Glorot) uniform initialization for tanh/sigmoid/linear layers.
pub fn xavier_uniform(
    rng: &mut impl Rng,
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform_tensor(rng, shape, -limit, limit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng(42);
        let mut b = rng(42);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn randn_moments_are_plausible() {
        let mut r = rng(7);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| randn(&mut r)).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn poisson_mean_is_plausible() {
        let mut r = rng(11);
        let lambda = 3.0;
        let n = 10_000;
        let total: u64 = (0..n).map(|_| poisson(&mut r, lambda) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut r = rng(1);
        assert_eq!(poisson(&mut r, 0.0), 0);
        assert_eq!(poisson(&mut r, -1.0), 0);
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let mut r = rng(3);
        let t = he_normal(&mut r, &[64, 64], 64 * 9);
        // std should be sqrt(2/576) ~ 0.059; sample std within 20%.
        let mean = t.mean();
        let var = t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / t.len() as f32;
        let expected = 2.0 / (64.0 * 9.0);
        assert!((var - expected).abs() / expected < 0.2, "var {var} vs {expected}");
    }

    #[test]
    fn xavier_uniform_is_bounded() {
        let mut r = rng(5);
        let t = xavier_uniform(&mut r, &[10, 10], 10, 10);
        let limit = (6.0f32 / 20.0).sqrt();
        assert!(t.data().iter().all(|x| x.abs() <= limit));
    }
}
