//! Elementwise activation layers and stable softmax helpers.

use crate::layer::{Layer, Mode};
use crate::tensor::Tensor;

/// Rectified linear unit: `max(0, x)`.
#[derive(Default)]
pub struct ReLU {
    mask: Vec<bool>,
}

impl Layer for ReLU {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        self.mask.clear();
        if mode.caches_for_backward() {
            self.mask.extend(x.data().iter().map(|&v| v > 0.0));
        }
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert_eq!(grad.len(), self.mask.len(), "ReLU backward before forward");
        let data =
            grad.data().iter().zip(&self.mask).map(|(&g, &m)| if m { g } else { 0.0 }).collect();
        Tensor::from_vec(data, grad.shape())
    }
}

/// Logistic sigmoid: `1 / (1 + e^-x)`.
#[derive(Default)]
pub struct Sigmoid {
    out: Vec<f32>,
}

/// Scalar sigmoid used by losses and post-processing.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        // Stable form for large negative x.
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let out = x.map(sigmoid);
        self.out = if mode.caches_for_backward() { out.data().to_vec() } else { Vec::new() };
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert_eq!(grad.len(), self.out.len(), "Sigmoid backward before forward");
        let data = grad.data().iter().zip(&self.out).map(|(&g, &y)| g * y * (1.0 - y)).collect();
        Tensor::from_vec(data, grad.shape())
    }
}

/// Hyperbolic tangent.
#[derive(Default)]
pub struct Tanh {
    out: Vec<f32>,
}

impl Layer for Tanh {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let out = x.map(f32::tanh);
        self.out = if mode.caches_for_backward() { out.data().to_vec() } else { Vec::new() };
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert_eq!(grad.len(), self.out.len(), "Tanh backward before forward");
        let data = grad.data().iter().zip(&self.out).map(|(&g, &y)| g * (1.0 - y * y)).collect();
        Tensor::from_vec(data, grad.shape())
    }
}

/// Gaussian error linear unit, tanh approximation (used by transformer FFNs).
#[derive(Default)]
pub struct Gelu {
    input: Vec<f32>,
}

#[inline]
fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

#[inline]
fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let u = C * (x + 0.044715 * x * x * x);
    let t = u.tanh();
    let du = C * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

impl Layer for Gelu {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        self.input = if mode.caches_for_backward() { x.data().to_vec() } else { Vec::new() };
        x.map(gelu_scalar)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert_eq!(grad.len(), self.input.len(), "Gelu backward before forward");
        let data =
            grad.data().iter().zip(&self.input).map(|(&g, &x)| g * gelu_grad_scalar(x)).collect();
        Tensor::from_vec(data, grad.shape())
    }
}

/// Numerically stable softmax over a slice, written into `out`.
pub fn softmax_into(xs: &[f32], out: &mut [f32]) {
    debug_assert_eq!(xs.len(), out.len());
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for (o, &x) in out.iter_mut().zip(xs) {
        let e = (x - max).exp();
        *o = e;
        sum += e;
    }
    let inv = if sum > 0.0 { 1.0 / sum } else { 0.0 };
    out.iter_mut().for_each(|o| *o *= inv);
}

/// Softmax over the last dimension of a rank-2 tensor (one distribution per row).
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let (rows, cols) = x.dims2();
    let mut out = Tensor::zeros(&[rows, cols]);
    for r in 0..rows {
        let xs = &x.data()[r * cols..(r + 1) * cols];
        softmax_into(xs, &mut out.data_mut()[r * cols..(r + 1) * cols]);
    }
    out
}

/// Given softmax output `y` and upstream gradient `g` (both row-major, same
/// shape), computes the gradient with respect to the softmax input:
/// `dx_i = y_i * (g_i - sum_j g_j y_j)` per row.
pub fn softmax_backward_rows(y: &Tensor, g: &Tensor) -> Tensor {
    assert_eq!(y.shape(), g.shape());
    let (rows, cols) = y.dims2();
    let mut out = Tensor::zeros(&[rows, cols]);
    for r in 0..rows {
        let yr = &y.data()[r * cols..(r + 1) * cols];
        let gr = &g.data()[r * cols..(r + 1) * cols];
        let dot: f32 = yr.iter().zip(gr).map(|(&a, &b)| a * b).sum();
        for c in 0..cols {
            out.data_mut()[r * cols + c] = yr[c] * (gr[c] - dot);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_and_masks() {
        let mut l = ReLU::default();
        let y = l.forward(&Tensor::from_slice(&[-1.0, 0.0, 2.0]), Mode::Train);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let g = l.backward(&Tensor::from_slice(&[1.0, 1.0, 1.0]));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let y = softmax_rows(&x);
        for r in 0..2 {
            let s: f32 = y.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Monotone in the logits.
        assert!(y.at2(0, 2) > y.at2(0, 1));
    }

    #[test]
    fn softmax_handles_large_logits() {
        let x = Tensor::from_vec(vec![1000.0, 1000.0], &[1, 2]);
        let y = softmax_rows(&x);
        assert!((y.at2(0, 0) - 0.5).abs() < 1e-6);
        assert!(y.all_finite());
    }

    #[test]
    fn gelu_matches_known_values() {
        // GELU(0) = 0, GELU(large) ~ x, GELU(-large) ~ 0.
        assert_eq!(gelu_scalar(0.0), 0.0);
        assert!((gelu_scalar(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu_scalar(-10.0).abs() < 1e-3);
    }
}
