//! 1-D convolution over `[batch, channels, time]` tensors.
//!
//! Three interchangeable compute backends:
//!
//! - **Naive**: the decomposition into K shifted scaled-row (axpy/dot)
//!   operations. The correctness oracle every other path is property-tested
//!   against (`tests/conv_gemm_equivalence.rs`, `tests/kernel_oracle.rs`),
//!   and the fastest option for very skinny shapes where im2col overhead
//!   dominates.
//! - **Gemm**: the input is lowered with [`crate::im2col`] and the forward
//!   pass, the weight gradient and the input gradient each become one
//!   [`crate::gemm`] call per batch group, with groups fanned out over
//!   worker threads when the per-item work is large enough. Uses the
//!   portable scalar microkernel.
//! - **Simd**: the same lowering driven through the explicit
//!   [`crate::simd`] microkernels (AVX2/FMA or NEON, runtime-detected) and
//!   the skinny-GEMM fast path for `out_c ≤ 16` — the inference-serving
//!   specialization. Stride-1, dilation-1 skinny convolutions (the entire
//!   CamAL trunk) skip im2col entirely: each lowered row is a shifted
//!   window of a once-padded input, fed to the kernel as a slice
//!   (`Conv1d::forward_simd_direct`).
//!
//! All paths accumulate every output element over `(c_in, tap)` — and the
//! weight gradient over `(batch, t)` — in the same left-to-right order, so
//! they are bit-identical wherever each multiply-add step fuses identically
//! (see [`crate::simd::simd_exact`]; Naive vs Gemm is exact on every
//! build).
//!
//! [`ConvBackend::Auto`] (the default) resolves per shape through the
//! [`crate::dispatch`] autotuner: the first call on a given
//! `(out_c, batch·t_out, in_c·k, threads)` key races the candidate backends
//! on the real workload and caches the winner for the process lifetime.
//! Only bit-identical candidates are raced, so autotuning never perturbs
//! results. `NILM_BACKEND=naive|gemm|simd` (or
//! [`crate::dispatch::set_forced_backend`]) forces one backend everywhere;
//! the longer-standing `NILM_CONV_BACKEND` does the same for convolutions
//! only and takes precedence.

use crate::dispatch::{self, Backend, ShapeKey};
use crate::gemm::{fmadd, gemm_mode, gemm_seq_mode, kernel_mode_for, KernelMode, Layout};
use crate::im2col::{grad2col, im2col, weight_for_input_grad, ConvGeometry};
use crate::init;
use crate::layer::{Layer, Mode, Param};
use crate::simd;
use crate::tensor::Tensor;
use rand::Rng;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU8, Ordering};

/// Padding policy for [`Conv1d`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Padding {
    /// Output length equals `ceil(T / stride)`; zero-pads both sides
    /// (asymmetric by one on the right for even effective kernels).
    Same,
    /// No padding; output shrinks by the receptive field.
    Valid,
    /// Explicit symmetric padding of `n` zeros on each side.
    Explicit(usize),
}

/// Which convolution implementation [`Conv1d`] dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConvBackend {
    /// Pick per shape via the cached autotuner (naive for tiny shapes).
    Auto,
    /// Always the shifted-axpy reference path.
    Naive,
    /// Always im2col + GEMM with the portable scalar microkernel.
    Gemm,
    /// Always im2col + GEMM with the explicit SIMD microkernels (falls back
    /// to the scalar microkernel where the ISA is missing).
    Simd,
}

/// Process-wide backend default, overridable per layer with
/// [`Conv1d::set_backend`]. Initialized from `NILM_CONV_BACKEND`
/// (`auto|naive|gemm|simd`) on first use.
static GLOBAL_BACKEND: AtomicU8 = AtomicU8::new(u8::MAX);

fn encode(b: ConvBackend) -> u8 {
    match b {
        ConvBackend::Auto => 0,
        ConvBackend::Naive => 1,
        ConvBackend::Gemm => 2,
        ConvBackend::Simd => 3,
    }
}

fn decode(v: u8) -> ConvBackend {
    match v {
        1 => ConvBackend::Naive,
        2 => ConvBackend::Gemm,
        3 => ConvBackend::Simd,
        _ => ConvBackend::Auto,
    }
}

/// Sets the process-wide default convolution backend.
pub fn set_conv_backend(backend: ConvBackend) {
    GLOBAL_BACKEND.store(encode(backend), Ordering::Relaxed);
}

/// The process-wide default convolution backend (`NILM_CONV_BACKEND` env
/// override, else [`ConvBackend::Auto`]).
pub fn conv_backend() -> ConvBackend {
    let v = GLOBAL_BACKEND.load(Ordering::Relaxed);
    if v != u8::MAX {
        return decode(v);
    }
    let from_env = match std::env::var("NILM_CONV_BACKEND").ok().as_deref() {
        Some("naive") => ConvBackend::Naive,
        Some("gemm") => ConvBackend::Gemm,
        Some("simd") => ConvBackend::Simd,
        _ => ConvBackend::Auto,
    };
    GLOBAL_BACKEND.store(encode(from_env), Ordering::Relaxed);
    from_env
}

/// Minimum total multiply-accumulate count (whole batch) before `Auto`
/// bothers autotuning; below this the shifted-axpy path wins outright and
/// even the one-time tuning race would outweigh any possible gain.
const GEMM_MIN_MACS: usize = 4096;

/// How a resolved backend executes: the reference loop, or the lowered GEMM
/// path with one of the two inner-kernel flavors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Plan {
    Naive,
    Gemm(KernelMode),
}

fn plan_for(backend: Backend) -> Plan {
    match backend {
        Backend::Naive => Plan::Naive,
        Backend::Gemm => Plan::Gemm(KernelMode::Scalar),
        Backend::Simd => Plan::Gemm(kernel_mode_for(Some(Backend::Simd))),
    }
}

/// Total multiply-accumulate count above which the batch splits into one
/// GEMM group per worker thread instead of a single wide GEMM.
const PAR_CONV_MACS: usize = 1 << 20;

/// A 1-D convolution layer with optional dilation and stride.
pub struct Conv1d {
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    dilation: usize,
    padding: Padding,
    backend: Option<ConvBackend>,
    weight: Param,
    bias: Option<Param>,
    cached_input: Option<Tensor>,
    // Reused GEMM-path scratch (column matrix, wide product, gradient
    // column matrix): grown once, then stable across calls.
    buf_col: Vec<f32>,
    buf_wide: Vec<f32>,
    buf_gcol: Vec<f32>,
    buf_dw: Vec<f32>,
}

impl Conv1d {
    /// Creates a stride-1, dilation-1 convolution with He initialization.
    pub fn new(rng: &mut impl Rng, in_c: usize, out_c: usize, k: usize, padding: Padding) -> Self {
        Self::with_options(rng, in_c, out_c, k, padding, 1, 1, true)
    }

    /// Full constructor.
    #[allow(clippy::too_many_arguments)]
    pub fn with_options(
        rng: &mut impl Rng,
        in_c: usize,
        out_c: usize,
        k: usize,
        padding: Padding,
        stride: usize,
        dilation: usize,
        bias: bool,
    ) -> Self {
        assert!(in_c > 0 && out_c > 0 && k > 0 && stride > 0 && dilation > 0);
        let weight = Param::new(init::he_normal(rng, &[out_c, in_c, k], in_c * k));
        let bias = bias.then(|| Param::new(Tensor::zeros(&[out_c])));
        Conv1d {
            in_c,
            out_c,
            k,
            stride,
            dilation,
            padding,
            backend: None,
            weight,
            bias,
            cached_input: None,
            buf_col: Vec::new(),
            buf_wide: Vec::new(),
            buf_gcol: Vec::new(),
            buf_dw: Vec::new(),
        }
    }

    /// Overrides the backend for this layer (`None` = process default).
    pub fn set_backend(&mut self, backend: Option<ConvBackend>) {
        self.backend = backend;
    }

    /// Effective kernel extent `(k - 1) * dilation + 1`.
    fn effective_k(&self) -> usize {
        (self.k - 1) * self.dilation + 1
    }

    /// `(pad_left, pad_right)` for an input of length `t`.
    fn pads(&self, t: usize) -> (usize, usize) {
        match self.padding {
            Padding::Valid => (0, 0),
            Padding::Explicit(p) => (p, p),
            Padding::Same => {
                // Match the common "same" definition: out = ceil(t / stride).
                let out = t.div_ceil(self.stride);
                let needed = ((out - 1) * self.stride + self.effective_k()).saturating_sub(t);
                let left = needed / 2;
                (left, needed - left)
            }
        }
    }

    /// Output length for an input of length `t`.
    pub fn out_len(&self, t: usize) -> usize {
        let (pl, pr) = self.pads(t);
        let span = t + pl + pr;
        assert!(
            span >= self.effective_k(),
            "input ({t}) shorter than kernel ({})",
            self.effective_k()
        );
        (span - self.effective_k()) / self.stride + 1
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_c
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// Index geometry for an input of length `t_in`.
    fn geometry(&self, t_in: usize) -> ConvGeometry {
        ConvGeometry {
            in_c: self.in_c,
            out_c: self.out_c,
            k: self.k,
            stride: self.stride,
            dilation: self.dilation,
            pad_left: self.pads(t_in).0,
            t_in,
            t_out: self.out_len(t_in),
        }
    }

    /// The backend this layer dispatches to, before `Auto` resolution:
    /// per-layer override, then the conv-specific global
    /// (`set_conv_backend` / `NILM_CONV_BACKEND`), then the cross-op forced
    /// backend (`set_forced_backend` / `NILM_BACKEND`), else `Auto`.
    fn resolved_backend(&self) -> ConvBackend {
        if let Some(b) = self.backend {
            return b;
        }
        let global = conv_backend();
        if global != ConvBackend::Auto {
            return global;
        }
        match dispatch::forced_backend() {
            Some(Backend::Naive) => ConvBackend::Naive,
            Some(Backend::Gemm) => ConvBackend::Gemm,
            Some(Backend::Simd) => ConvBackend::Simd,
            None => ConvBackend::Auto,
        }
    }

    /// Whether an `Auto` dispatch at this geometry is worth autotuning at
    /// all (tiny shapes go straight to the naive path).
    fn auto_tunes(geo: &ConvGeometry, batch: usize) -> bool {
        batch * geo.out_c * geo.col_rows() * geo.t_out >= GEMM_MIN_MACS
    }

    /// Autotune key of the forward pass at this geometry/batch: the lowered
    /// GEMM shape plus the worker-pool width (see [`ShapeKey`]).
    fn forward_key(geo: &ConvGeometry, batch: usize) -> ShapeKey {
        ShapeKey::with_current_threads("conv_fwd", geo.out_c, batch * geo.t_out, geo.col_rows())
    }

    /// Backends the autotuner may race: always Naive and Gemm (bit-identical
    /// on every build); Simd only when its results are bit-identical too, so
    /// the timing race can never change computed values.
    fn auto_candidates() -> Vec<Backend> {
        let mut v = vec![Backend::Naive, Backend::Gemm];
        if crate::simd::simd_available() && crate::simd::simd_exact() {
            v.push(Backend::Simd);
        }
        v
    }

    /// Adds the bias (when present) on top of fully accumulated outputs.
    fn add_bias(&self, out: &mut Tensor) {
        if let Some(bias) = &self.bias {
            let (b, _, _) = out.dims3();
            for bi in 0..b {
                for (co, &v) in bias.value.data().iter().enumerate() {
                    out.row_mut(bi, co).iter_mut().for_each(|o| *o += v);
                }
            }
        }
    }

    // ---- naive (shifted-axpy) backend -----------------------------------

    fn forward_naive(&self, x: &Tensor, geo: &ConvGeometry, out: &mut Tensor) {
        let (b, _, _) = x.dims3();
        for bi in 0..b {
            for co in 0..self.out_c {
                for ci in 0..self.in_c {
                    let xr = x.row(bi, ci);
                    let wbase = (co * self.in_c + ci) * self.k;
                    let w = &self.weight.value.data()[wbase..wbase + self.k];
                    let or = out.row_mut(bi, co);
                    for (kk, &wv) in w.iter().enumerate() {
                        let (lo, hi, offset) = geo.valid_out_range(kk);
                        if lo >= hi {
                            // Tap never overlaps the input (deep padding);
                            // lo + offset may be negative here, so the
                            // shifted slice below must not be formed.
                            continue;
                        }
                        if self.stride == 1 {
                            let xs = &xr
                                [(lo as isize + offset) as usize..(hi as isize + offset) as usize];
                            for (o, &xv) in or[lo..hi].iter_mut().zip(xs) {
                                *o = fmadd(wv, xv, *o);
                            }
                        } else {
                            for to in lo..hi {
                                let ti = (to * self.stride) as isize + offset;
                                or[to] = fmadd(wv, xr[ti as usize], or[to]);
                            }
                        }
                    }
                }
            }
        }
    }

    fn backward_naive(&mut self, x: &Tensor, grad: &Tensor, geo: &ConvGeometry, dx: &mut Tensor) {
        let (b, _, _) = x.dims3();
        // The weight gradient accumulates into a scratch as one continuous
        // per-element chain over (batch, t) and lands on the stored gradient
        // in a single add — the same summation tree as the batched GEMM
        // backend, so the two stay bit-identical.
        let mut dw_scratch = vec![0.0f32; self.weight.grad.len()];
        for bi in 0..b {
            for co in 0..self.out_c {
                let gr = grad.row(bi, co);
                for ci in 0..self.in_c {
                    let xr = x.row(bi, ci);
                    let wbase = (co * self.in_c + ci) * self.k;
                    for kk in 0..self.k {
                        let (lo, hi, offset) = geo.valid_out_range(kk);
                        if lo >= hi {
                            continue;
                        }
                        let wv = self.weight.value.data()[wbase + kk];
                        let mut dw = dw_scratch[wbase + kk];
                        if self.stride == 1 {
                            let ilo = (lo as isize + offset) as usize;
                            let ihi = (hi as isize + offset) as usize;
                            // dW: correlation of grad with input.
                            for (&g, &xv) in gr[lo..hi].iter().zip(&xr[ilo..ihi]) {
                                dw = fmadd(g, xv, dw);
                            }
                            // dX: scatter grad back, shifted.
                            let dxr = dx.row_mut(bi, ci);
                            for (d, &g) in dxr[ilo..ihi].iter_mut().zip(&gr[lo..hi]) {
                                *d = fmadd(wv, g, *d);
                            }
                        } else {
                            let dxr = dx.row_mut(bi, ci);
                            for to in lo..hi {
                                let ti = ((to * self.stride) as isize + offset) as usize;
                                dw = fmadd(gr[to], xr[ti], dw);
                                dxr[ti] = fmadd(wv, gr[to], dxr[ti]);
                            }
                        }
                        dw_scratch[wbase + kk] = dw;
                    }
                }
            }
        }
        for (g, &d) in self.weight.grad.data_mut().iter_mut().zip(&dw_scratch) {
            *g += d;
        }
    }

    // ---- im2col + GEMM backend ------------------------------------------
    //
    // The batch is processed in contiguous groups of items; each group
    // unfolds its items side by side into one wide column matrix (`n =
    // group * T`), runs a single GEMM, and scatters the `[C_out, group * T]`
    // product back into the batch-major output. One group per worker thread
    // (a single group when sequential): wide GEMMs amortize packing far
    // better than per-item ones, and groups are embarrassingly parallel.
    // Column partitioning never touches the per-element accumulation chain,
    // so grouping cannot perturb bit-exactness.

    /// Contiguous batch ranges, one per worker when the work justifies it.
    fn batch_groups(b: usize, macs_per_item: usize) -> usize {
        let threads = rayon::current_num_threads();
        if threads > 1 && b > 1 && b * macs_per_item >= PAR_CONV_MACS {
            b.div_ceil(threads)
        } else {
            b
        }
    }

    /// One group's worth of forward work: unfold `gb` items starting at
    /// `b0` into `col`, multiply, scatter into the batch-major output block.
    #[allow(clippy::too_many_arguments)]
    fn forward_gemm_group(
        w: &[f32],
        x: &Tensor,
        geo: &ConvGeometry,
        b0: usize,
        oblk: &mut [f32],
        col: &mut Vec<f32>,
        prod: &mut Vec<f32>,
        mode: KernelMode,
    ) {
        let (m, t, kdim) = (geo.out_c, geo.t_out, geo.col_rows());
        let gb = oblk.len() / (m * t);
        let n = gb * t;
        col.resize(kdim * n, 0.0);
        prod.resize(m * n, 0.0);
        for local in 0..gb {
            im2col(geo, x.batch_slice(b0 + local), col, n, local * t);
        }
        gemm_seq_mode(m, n, kdim, w, Layout::Normal, col, Layout::Normal, prod, false, mode);
        // Scatter [C_out, gb * T] back to batch-major [gb, C_out, T].
        for local in 0..gb {
            for co in 0..m {
                let src = &prod[co * n + local * t..co * n + local * t + t];
                oblk[(local * m + co) * t..(local * m + co) * t + t].copy_from_slice(src);
            }
        }
    }

    /// Whether [`Self::forward_simd_direct`] applies: a stride-1,
    /// dilation-1 convolution whose output channels fit the skinny kernel
    /// (`out_c ≤ SKINNY_MAX_M`). Under those constraints every lowered
    /// `(c_in, tap)` row of the im2col matrix is a plain shifted window of
    /// the zero-padded input, so the column matrix never needs to exist.
    fn direct_simd_eligible(geo: &ConvGeometry) -> bool {
        geo.stride == 1 && geo.dilation == 1 && geo.out_c <= simd::SKINNY_MAX_M
    }

    /// Direct (im2col-free) SIMD convolution: zero-pad each batch item once
    /// (`in_c · pad_len` floats instead of `in_c · k · t_out`), hand the
    /// skinny kernel the `k · in_c` shifted windows as row slices, and write
    /// straight into the batch-major output block. Same `(c_in, tap)`
    /// left-to-right accumulation chain as the lowered path, so results are
    /// bit-identical to [`Self::forward_gemm`] under `KernelMode::Simd`.
    fn forward_simd_direct(&mut self, x: &Tensor, geo: &ConvGeometry, out: &mut Tensor) {
        let (b, _, _) = x.dims3();
        let (m, t, kdim, kw) = (geo.out_c, geo.t_out, geo.col_rows(), geo.k);
        // Long enough that every window `[tap, tap + t_out)` is in bounds
        // and the real samples land at `pad_left + [0, t_in)`.
        let pad_len = (t + kw - 1).max(geo.pad_left + geo.t_in);
        let item = geo.in_c * pad_len;
        let xp = &mut self.buf_col;
        xp.clear();
        xp.resize(b * item, 0.0);
        for bi in 0..b {
            let xi = x.batch_slice(bi);
            for ci in 0..geo.in_c {
                let dst = bi * item + ci * pad_len + geo.pad_left;
                xp[dst..dst + geo.t_in].copy_from_slice(&xi[ci * geo.t_in..(ci + 1) * geo.t_in]);
            }
        }
        let xp = &self.buf_col;
        let w = self.weight.value.data();
        let run_item = |bi: usize, oblk: &mut [f32]| {
            let base = bi * item;
            let rows: Vec<&[f32]> = (0..kdim)
                .map(|p| {
                    let start = base + (p / kw) * pad_len + (p % kw);
                    &xp[start..start + t]
                })
                .collect();
            simd::skinny_gemm_rows(m, t, kdim, w, &rows, oblk, false);
        };
        if Self::batch_groups(b, m * t * kdim) >= b {
            for (bi, oblk) in out.data_mut().chunks_mut(m * t).enumerate() {
                run_item(bi, oblk);
            }
        } else {
            out.data_mut().par_chunks_mut(m * t).enumerate().for_each(|(bi, oblk)| {
                run_item(bi, oblk);
            });
        }
    }

    fn forward_gemm(&mut self, x: &Tensor, geo: &ConvGeometry, out: &mut Tensor, mode: KernelMode) {
        let (b, _, _) = x.dims3();
        let w = self.weight.value.data();
        let (m, t, kdim) = (geo.out_c, geo.t_out, geo.col_rows());
        let group = Self::batch_groups(b, m * t * kdim);
        if group >= b {
            // Single group: run in place with the layer's reusable scratch.
            Self::forward_gemm_group(
                w,
                x,
                geo,
                0,
                out.data_mut(),
                &mut self.buf_col,
                &mut self.buf_wide,
                mode,
            );
        } else {
            out.data_mut().par_chunks_mut(group * m * t).enumerate().for_each(|(gi, oblk)| {
                let (mut col, mut prod) = (Vec::new(), Vec::new());
                Self::forward_gemm_group(w, x, geo, gi * group, oblk, &mut col, &mut prod, mode);
            });
        }
    }

    /// One group's worth of input-gradient work: the transposed
    /// convolution `dx = Ŵ · grad2col(grad)` as a wide GEMM plus scatter.
    #[allow(clippy::too_many_arguments)]
    fn backward_gemm_dx_group(
        what: &[f32],
        grad: &Tensor,
        geo: &ConvGeometry,
        b0: usize,
        dblk: &mut [f32],
        gcol: &mut Vec<f32>,
        prod: &mut Vec<f32>,
        mode: KernelMode,
    ) {
        let (in_c, t_in, gk) = (geo.in_c, geo.t_in, geo.gcol_rows());
        let gb = dblk.len() / (in_c * t_in);
        let n = gb * t_in;
        gcol.resize(gk * n, 0.0);
        prod.resize(in_c * n, 0.0);
        for local in 0..gb {
            grad2col(geo, grad.batch_slice(b0 + local), gcol, n, local * t_in);
        }
        gemm_seq_mode(in_c, n, gk, what, Layout::Normal, gcol, Layout::Normal, prod, false, mode);
        for local in 0..gb {
            for ci in 0..in_c {
                let src = &prod[ci * n + local * t_in..ci * n + local * t_in + t_in];
                dblk[(local * in_c + ci) * t_in..(local * in_c + ci) * t_in + t_in]
                    .copy_from_slice(src);
            }
        }
    }

    fn backward_gemm(
        &mut self,
        x: &Tensor,
        grad: &Tensor,
        geo: &ConvGeometry,
        dx: &mut Tensor,
        mode: KernelMode,
    ) {
        let (b, _, _) = x.dims3();
        let kdim = geo.col_rows();
        let (out_c, t_out, in_c, t_in) = (geo.out_c, geo.t_out, geo.in_c, geo.t_in);
        let n_out = b * t_out;

        // dW = grad_big · col_bigᵀ over the whole batch at once: the inner
        // dimension (batch, t) accumulates in exactly the naive path's
        // continuous chain, and lands on the stored gradient in one add.
        let col_big = &mut self.buf_col;
        col_big.resize(kdim * n_out, 0.0);
        let grad_big = &mut self.buf_wide;
        grad_big.resize(out_c * n_out, 0.0);
        for bi in 0..b {
            im2col(geo, x.batch_slice(bi), col_big, n_out, bi * t_out);
            for co in 0..out_c {
                let dst = co * n_out + bi * t_out;
                grad_big[dst..dst + t_out].copy_from_slice(grad.row(bi, co));
            }
        }
        let dw = &mut self.buf_dw;
        dw.clear();
        dw.resize(out_c * kdim, 0.0);
        gemm_mode(
            out_c,
            kdim,
            n_out,
            grad_big,
            Layout::Normal,
            col_big,
            Layout::Transposed,
            dw,
            false,
            mode,
        );
        for (g, &d) in self.weight.grad.data_mut().iter_mut().zip(self.buf_dw.iter()) {
            *g += d;
        }

        // dX = Ŵ · grad2col(grad): the transposed convolution, again one
        // wide GEMM per batch group. The permuted weight reuses the dW
        // scratch (the dW product has already been folded into the stored
        // gradient above).
        let gk = geo.gcol_rows();
        self.buf_dw.clear();
        self.buf_dw.resize(in_c * gk, 0.0);
        weight_for_input_grad(geo, self.weight.value.data(), &mut self.buf_dw);
        let group = Self::batch_groups(b, in_c * t_in * gk);
        if group >= b {
            Self::backward_gemm_dx_group(
                &self.buf_dw,
                grad,
                geo,
                0,
                dx.data_mut(),
                &mut self.buf_gcol,
                &mut self.buf_wide,
                mode,
            );
        } else {
            // Parallel groups need per-worker buffers; the allocations are
            // amortized by the fan-out.
            let wref = &self.buf_dw;
            dx.data_mut().par_chunks_mut(group * in_c * t_in).enumerate().for_each(|(gi, dblk)| {
                let (mut gcol, mut prod) = (Vec::new(), Vec::new());
                Self::backward_gemm_dx_group(
                    wref,
                    grad,
                    geo,
                    gi * group,
                    dblk,
                    &mut gcol,
                    &mut prod,
                    mode,
                );
            });
        }
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let (b, c_in, t_in) = x.dims3();
        assert_eq!(c_in, self.in_c, "Conv1d expected {} input channels, got {}", self.in_c, c_in);
        let geo = self.geometry(t_in);
        let mut out = Tensor::zeros(&[b, self.out_c, geo.t_out]);
        // Every resolved arm runs under `dispatch::observe`, which feeds
        // the cumulative per-(op, shape, backend) kernel table and, inside
        // a traced request, records the "kernel" child span. The Auto arm
        // gets the same treatment inside `dispatch::autotune`.
        match self.resolved_backend() {
            ConvBackend::Naive => {
                dispatch::observe(Self::forward_key(&geo, b), Backend::Naive, || {
                    self.forward_naive(x, &geo, &mut out)
                })
            }
            ConvBackend::Gemm => {
                dispatch::observe(Self::forward_key(&geo, b), Backend::Gemm, || {
                    self.forward_gemm(x, &geo, &mut out, KernelMode::Scalar)
                })
            }
            ConvBackend::Simd => {
                let kmode = kernel_mode_for(Some(Backend::Simd));
                dispatch::observe(Self::forward_key(&geo, b), Backend::Simd, || {
                    if kmode == KernelMode::Simd && Self::direct_simd_eligible(&geo) {
                        self.forward_simd_direct(x, &geo, &mut out)
                    } else {
                        self.forward_gemm(x, &geo, &mut out, kmode)
                    }
                })
            }
            ConvBackend::Auto if !Self::auto_tunes(&geo, b) => {
                dispatch::observe(Self::forward_key(&geo, b), Backend::Naive, || {
                    self.forward_naive(x, &geo, &mut out)
                })
            }
            ConvBackend::Auto => {
                let key = Self::forward_key(&geo, b);
                let candidates = Self::auto_candidates();
                dispatch::autotune(key, &candidates, |backend| {
                    // The naive path accumulates into a zeroed output, so
                    // tuning re-runs must re-zero between candidates.
                    out.data_mut().iter_mut().for_each(|v| *v = 0.0);
                    match plan_for(backend) {
                        Plan::Naive => self.forward_naive(x, &geo, &mut out),
                        Plan::Gemm(KernelMode::Simd) if Self::direct_simd_eligible(&geo) => {
                            self.forward_simd_direct(x, &geo, &mut out)
                        }
                        Plan::Gemm(mode) => self.forward_gemm(x, &geo, &mut out, mode),
                    }
                });
            }
        }
        self.add_bias(&mut out);
        if mode.caches_for_backward() {
            // Cache the input for backward, reusing the previous cache's
            // allocation.
            let mut cache = self.cached_input.take().unwrap_or_else(|| Tensor::zeros(&[0]));
            cache.resize(x.shape());
            cache.data_mut().copy_from_slice(x.data());
            self.cached_input = Some(cache);
        } else {
            // Inference: drop any stale cache so a later backward cannot
            // silently differentiate against the wrong input.
            self.cached_input = None;
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.cached_input.take().expect("Conv1d backward before forward");
        let (b, _, t_in) = x.dims3();
        let (gb, gc, t_out) = grad.dims3();
        assert_eq!(gb, b);
        assert_eq!(gc, self.out_c);
        let geo = self.geometry(t_in);
        assert_eq!(geo.t_out, t_out, "grad length mismatch");
        let mut dx = Tensor::zeros(&[b, self.in_c, t_in]);

        // Bias gradient: identical on both backends.
        if let Some(bias) = &mut self.bias {
            for bi in 0..b {
                for co in 0..self.out_c {
                    bias.grad.data_mut()[co] += grad.row(bi, co).iter().sum::<f32>();
                }
            }
        }

        let plan = match self.resolved_backend() {
            ConvBackend::Naive => Plan::Naive,
            ConvBackend::Gemm => Plan::Gemm(KernelMode::Scalar),
            ConvBackend::Simd => Plan::Gemm(kernel_mode_for(Some(Backend::Simd))),
            ConvBackend::Auto if !Self::auto_tunes(&geo, b) => Plan::Naive,
            ConvBackend::Auto => {
                // Reuse the forward pass's tuned winner: backward shares its
                // arithmetic-intensity profile, and re-racing here would
                // double-accumulate the parameter gradients.
                match dispatch::cached_choice(Self::forward_key(&geo, b)) {
                    Some(winner) => plan_for(winner),
                    None => Plan::Gemm(kernel_mode_for(None)),
                }
            }
        };
        match plan {
            Plan::Naive => self.backward_naive(&x, grad, &geo, &mut dx),
            Plan::Gemm(mode) => self.backward_gemm(&x, grad, &geo, &mut dx, mode),
        }
        self.cached_input = Some(x);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng;

    /// A conv whose weights we set by hand for exact-output tests.
    fn manual_conv(
        in_c: usize,
        out_c: usize,
        k: usize,
        padding: Padding,
        w: &[f32],
        b: Option<&[f32]>,
    ) -> Conv1d {
        let mut r = rng(0);
        let mut conv = Conv1d::new(&mut r, in_c, out_c, k, padding);
        conv.weight.value = Tensor::from_vec(w.to_vec(), &[out_c, in_c, k]);
        match (b, &mut conv.bias) {
            (Some(bv), Some(p)) => p.value = Tensor::from_vec(bv.to_vec(), &[out_c]),
            (None, bias) => *bias = None,
            _ => {}
        }
        conv
    }

    #[test]
    fn identity_kernel_passes_signal_through() {
        // k=1, weight=1 is the identity.
        let mut conv = manual_conv(1, 1, 1, Padding::Same, &[1.0], None);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 4]);
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn valid_padding_shrinks_output() {
        let mut conv = manual_conv(1, 1, 3, Padding::Valid, &[1.0, 1.0, 1.0], None);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0], &[1, 1, 5]);
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 1, 3]);
        assert_eq!(y.data(), &[6.0, 9.0, 12.0]); // moving window sums
    }

    #[test]
    fn same_padding_preserves_length_odd_kernel() {
        let mut conv = manual_conv(1, 1, 3, Padding::Same, &[0.0, 1.0, 0.0], None);
        let x = Tensor::from_vec(vec![5.0, 6.0, 7.0], &[1, 1, 3]);
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 1, 3]);
        assert_eq!(y.data(), &[5.0, 6.0, 7.0]); // center tap = identity
    }

    #[test]
    fn same_padding_even_kernel_and_long_kernels() {
        let mut r = rng(1);
        for k in [2, 4, 5, 7, 9, 15, 25] {
            let conv = Conv1d::new(&mut r, 1, 1, k, Padding::Same);
            assert_eq!(conv.out_len(510), 510, "k={k}");
        }
    }

    #[test]
    fn stride_two_halves_output() {
        let mut r = rng(2);
        let conv = Conv1d::with_options(&mut r, 1, 4, 3, Padding::Same, 2, 1, true);
        assert_eq!(conv.out_len(10), 5);
        assert_eq!(conv.out_len(9), 5);
    }

    #[test]
    fn dilation_expands_receptive_field() {
        // k=2, dilation=2 spans 3 inputs: y[t] = x[t] + x[t+2] (valid).
        let mut conv = manual_conv(1, 1, 2, Padding::Valid, &[1.0, 1.0], None);
        conv.dilation = 2;
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 4]);
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 1, 2]);
        assert_eq!(y.data(), &[4.0, 6.0]);
    }

    #[test]
    fn bias_shifts_output() {
        let mut conv = manual_conv(1, 1, 1, Padding::Same, &[1.0], Some(&[10.0]));
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 1, 2]);
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[11.0, 12.0]);
    }

    #[test]
    fn multi_channel_sums_contributions() {
        // 2 in-channels, k=1: y = 2*x0 + 3*x1.
        let mut conv = manual_conv(2, 1, 1, Padding::Same, &[2.0, 3.0], None);
        let x = Tensor::from_vec(vec![1.0, 1.0, 10.0, 10.0], &[1, 2, 2]);
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[32.0, 32.0]);
    }

    #[test]
    fn backward_bias_grad_is_sum_of_upstream() {
        let mut conv = manual_conv(1, 1, 1, Padding::Same, &[1.0], Some(&[0.0]));
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 1, 3]);
        let _ = conv.forward(&x, Mode::Train);
        let _ = conv.backward(&Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 1, 3]));
        let mut bias_grad = 0.0;
        conv.visit_params(&mut |p| {
            if p.value.shape() == [1] {
                bias_grad = p.grad.data()[0];
            }
        });
        assert_eq!(bias_grad, 6.0);
    }

    #[test]
    fn param_count_matches_formula() {
        let mut r = rng(3);
        let mut conv = Conv1d::new(&mut r, 16, 32, 5, Padding::Same);
        assert_eq!(conv.num_params(), 32 * 16 * 5 + 32);
    }

    #[test]
    fn backends_agree_bitwise_on_a_nontrivial_shape() {
        let mut r = rng(7);
        let mut conv = Conv1d::with_options(&mut r, 3, 5, 7, Padding::Same, 1, 1, true);
        let x = init::randn_tensor(&mut r, &[2, 3, 40], 1.0);
        let g = init::randn_tensor(&mut r, &[2, 5, 40], 1.0);

        conv.set_backend(Some(ConvBackend::Naive));
        let y_n = conv.forward(&x, Mode::Train);
        conv.zero_grad();
        let dx_n = conv.backward(&g);
        let mut grads_n = Vec::new();
        conv.visit_params(&mut |p| grads_n.push(p.grad.clone()));

        conv.set_backend(Some(ConvBackend::Gemm));
        let y_g = conv.forward(&x, Mode::Train);
        conv.zero_grad();
        let dx_g = conv.backward(&g);
        let mut grads_g = Vec::new();
        conv.visit_params(&mut |p| grads_g.push(p.grad.clone()));

        assert_eq!(y_n.data(), y_g.data());
        assert_eq!(dx_n.data(), dx_g.data());
        for (a, b) in grads_n.iter().zip(&grads_g) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn auto_skips_tuning_for_tiny_shapes_and_tunes_large_ones() {
        let mut r = rng(8);
        let tiny = Conv1d::new(&mut r, 1, 1, 3, Padding::Same);
        assert!(!Conv1d::auto_tunes(&tiny.geometry(8), 1));
        let big = Conv1d::new(&mut r, 32, 64, 5, Padding::Same);
        assert!(Conv1d::auto_tunes(&big.geometry(128), 1));
    }

    #[test]
    fn auto_dispatch_output_matches_forced_naive_bitwise() {
        // Whatever the autotuner picks, the result must equal the oracle
        // bit for bit (only bit-identical candidates are raced).
        let mut r = rng(21);
        let mut conv = Conv1d::new(&mut r, 4, 8, 5, Padding::Same);
        let x = init::randn_tensor(&mut r, &[3, 4, 64], 1.0);
        conv.set_backend(Some(ConvBackend::Auto));
        let y_auto = conv.forward(&x, Mode::Eval);
        conv.set_backend(Some(ConvBackend::Naive));
        let y_naive = conv.forward(&x, Mode::Eval);
        assert_eq!(y_auto.data(), y_naive.data());
    }

    #[test]
    fn simd_backend_agrees_with_naive_when_exact() {
        if !crate::simd::simd_exact() {
            return; // covered with a ULP budget by the oracle suite
        }
        let mut r = rng(9);
        let mut conv = Conv1d::with_options(&mut r, 3, 5, 7, Padding::Same, 1, 1, true);
        let x = init::randn_tensor(&mut r, &[2, 3, 40], 1.0);
        let g = init::randn_tensor(&mut r, &[2, 5, 40], 1.0);

        conv.set_backend(Some(ConvBackend::Naive));
        let y_n = conv.forward(&x, Mode::Train);
        conv.zero_grad();
        let dx_n = conv.backward(&g);
        let mut grads_n = Vec::new();
        conv.visit_params(&mut |p| grads_n.push(p.grad.clone()));

        conv.set_backend(Some(ConvBackend::Simd));
        let y_s = conv.forward(&x, Mode::Train);
        conv.zero_grad();
        let dx_s = conv.backward(&g);
        let mut grads_s = Vec::new();
        conv.visit_params(&mut |p| grads_s.push(p.grad.clone()));

        assert_eq!(y_n.data(), y_s.data());
        assert_eq!(dx_n.data(), dx_s.data());
        for (a, b) in grads_n.iter().zip(&grads_s) {
            assert_eq!(a.data(), b.data());
        }
    }
}
