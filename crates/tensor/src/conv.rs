//! 1-D convolution over `[batch, channels, time]` tensors.
//!
//! The implementation decomposes the convolution into K shifted
//! scaled-row operations (one per kernel tap), so the stride-1 hot path is a
//! sequence of slice `axpy`/dot operations that LLVM vectorizes. This is the
//! workhorse of every model in the workspace.

use crate::init;
use crate::layer::{Layer, Mode, Param};
use crate::tensor::Tensor;
use rand::Rng;

/// Padding policy for [`Conv1d`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Padding {
    /// Output length equals `ceil(T / stride)`; zero-pads both sides
    /// (asymmetric by one on the right for even effective kernels).
    Same,
    /// No padding; output shrinks by the receptive field.
    Valid,
    /// Explicit symmetric padding of `n` zeros on each side.
    Explicit(usize),
}

/// A 1-D convolution layer with optional dilation and stride.
pub struct Conv1d {
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    dilation: usize,
    padding: Padding,
    weight: Param,
    bias: Option<Param>,
    cached_input: Option<Tensor>,
}

impl Conv1d {
    /// Creates a stride-1, dilation-1 convolution with He initialization.
    pub fn new(rng: &mut impl Rng, in_c: usize, out_c: usize, k: usize, padding: Padding) -> Self {
        Self::with_options(rng, in_c, out_c, k, padding, 1, 1, true)
    }

    /// Full constructor.
    #[allow(clippy::too_many_arguments)]
    pub fn with_options(
        rng: &mut impl Rng,
        in_c: usize,
        out_c: usize,
        k: usize,
        padding: Padding,
        stride: usize,
        dilation: usize,
        bias: bool,
    ) -> Self {
        assert!(in_c > 0 && out_c > 0 && k > 0 && stride > 0 && dilation > 0);
        let weight = Param::new(init::he_normal(rng, &[out_c, in_c, k], in_c * k));
        let bias = bias.then(|| Param::new(Tensor::zeros(&[out_c])));
        Conv1d { in_c, out_c, k, stride, dilation, padding, weight, bias, cached_input: None }
    }

    /// Effective kernel extent `(k - 1) * dilation + 1`.
    fn effective_k(&self) -> usize {
        (self.k - 1) * self.dilation + 1
    }

    /// `(pad_left, pad_right)` for an input of length `t`.
    fn pads(&self, t: usize) -> (usize, usize) {
        match self.padding {
            Padding::Valid => (0, 0),
            Padding::Explicit(p) => (p, p),
            Padding::Same => {
                // Match the common "same" definition: out = ceil(t / stride).
                let out = t.div_ceil(self.stride);
                let needed = ((out - 1) * self.stride + self.effective_k()).saturating_sub(t);
                let left = needed / 2;
                (left, needed - left)
            }
        }
    }

    /// Output length for an input of length `t`.
    pub fn out_len(&self, t: usize) -> usize {
        let (pl, pr) = self.pads(t);
        let span = t + pl + pr;
        assert!(
            span >= self.effective_k(),
            "input ({t}) shorter than kernel ({})",
            self.effective_k()
        );
        (span - self.effective_k()) / self.stride + 1
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_c
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.k
    }
}

/// For kernel tap `kk`, the range of output positions whose input index
/// `t_out * stride + kk*dilation - pad_left` lies inside `[0, t_in)`.
#[inline]
fn valid_out_range(offset: isize, stride: usize, t_in: usize, t_out: usize) -> (usize, usize) {
    // t_out*stride + offset in [0, t_in)  =>  t_out in [ceil(-offset/s), ceil((t_in-offset)/s))
    let s = stride as isize;
    let lo = if offset >= 0 { 0 } else { (-offset + s - 1) / s };
    let hi = ((t_in as isize - offset) + s - 1) / s;
    let lo = lo.clamp(0, t_out as isize) as usize;
    let hi = hi.clamp(0, t_out as isize) as usize;
    (lo, hi.max(lo))
}

impl Layer for Conv1d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let (b, c_in, t_in) = x.dims3();
        assert_eq!(c_in, self.in_c, "Conv1d expected {} input channels, got {}", self.in_c, c_in);
        let (pl, _) = self.pads(t_in);
        let t_out = self.out_len(t_in);
        let mut out = Tensor::zeros(&[b, self.out_c, t_out]);

        for bi in 0..b {
            for co in 0..self.out_c {
                // Bias first so the accumulation below adds on top.
                if let Some(bias) = &self.bias {
                    let v = bias.value.data()[co];
                    out.row_mut(bi, co).iter_mut().for_each(|o| *o = v);
                }
                for ci in 0..self.in_c {
                    let xr = x.row(bi, ci);
                    let wbase = (co * self.in_c + ci) * self.k;
                    let w = &self.weight.value.data()[wbase..wbase + self.k];
                    let or = out.row_mut(bi, co);
                    for (kk, &wv) in w.iter().enumerate() {
                        if wv == 0.0 {
                            continue;
                        }
                        let offset = (kk * self.dilation) as isize - pl as isize;
                        let (lo, hi) = valid_out_range(offset, self.stride, t_in, t_out);
                        if self.stride == 1 {
                            let xs = &xr
                                [(lo as isize + offset) as usize..(hi as isize + offset) as usize];
                            for (o, &xv) in or[lo..hi].iter_mut().zip(xs) {
                                *o += wv * xv;
                            }
                        } else {
                            for to in lo..hi {
                                let ti = (to * self.stride) as isize + offset;
                                or[to] += wv * xr[ti as usize];
                            }
                        }
                    }
                }
            }
        }
        self.cached_input = Some(x.clone());
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("Conv1d backward before forward");
        let (b, _, t_in) = x.dims3();
        let (gb, gc, t_out) = grad.dims3();
        assert_eq!(gb, b);
        assert_eq!(gc, self.out_c);
        let (pl, _) = self.pads(t_in);
        let mut dx = Tensor::zeros(&[b, self.in_c, t_in]);

        for bi in 0..b {
            for co in 0..self.out_c {
                let gr = grad.row(bi, co);
                if let Some(bias) = &mut self.bias {
                    bias.grad.data_mut()[co] += gr.iter().sum::<f32>();
                }
                for ci in 0..self.in_c {
                    let xr = x.row(bi, ci);
                    let wbase = (co * self.in_c + ci) * self.k;
                    for kk in 0..self.k {
                        let offset = (kk * self.dilation) as isize - pl as isize;
                        let (lo, hi) = valid_out_range(offset, self.stride, t_in, t_out);
                        if lo >= hi {
                            continue;
                        }
                        let wv = self.weight.value.data()[wbase + kk];
                        if self.stride == 1 {
                            let ilo = (lo as isize + offset) as usize;
                            let ihi = (hi as isize + offset) as usize;
                            // dW: correlation of grad with input.
                            let mut dw = 0.0f32;
                            for (&g, &xv) in gr[lo..hi].iter().zip(&xr[ilo..ihi]) {
                                dw += g * xv;
                            }
                            self.weight.grad.data_mut()[wbase + kk] += dw;
                            // dX: scatter grad back, shifted.
                            if wv != 0.0 {
                                let dxr = dx.row_mut(bi, ci);
                                for (d, &g) in dxr[ilo..ihi].iter_mut().zip(&gr[lo..hi]) {
                                    *d += wv * g;
                                }
                            }
                        } else {
                            let mut dw = 0.0f32;
                            let dxr = dx.row_mut(bi, ci);
                            for to in lo..hi {
                                let ti = ((to * self.stride) as isize + offset) as usize;
                                dw += gr[to] * xr[ti];
                                dxr[ti] += wv * gr[to];
                            }
                            self.weight.grad.data_mut()[wbase + kk] += dw;
                        }
                    }
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng;

    /// A conv whose weights we set by hand for exact-output tests.
    fn manual_conv(
        in_c: usize,
        out_c: usize,
        k: usize,
        padding: Padding,
        w: &[f32],
        b: Option<&[f32]>,
    ) -> Conv1d {
        let mut r = rng(0);
        let mut conv = Conv1d::new(&mut r, in_c, out_c, k, padding);
        conv.weight.value = Tensor::from_vec(w.to_vec(), &[out_c, in_c, k]);
        match (b, &mut conv.bias) {
            (Some(bv), Some(p)) => p.value = Tensor::from_vec(bv.to_vec(), &[out_c]),
            (None, bias) => *bias = None,
            _ => {}
        }
        conv
    }

    #[test]
    fn identity_kernel_passes_signal_through() {
        // k=1, weight=1 is the identity.
        let mut conv = manual_conv(1, 1, 1, Padding::Same, &[1.0], None);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 4]);
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn valid_padding_shrinks_output() {
        let mut conv = manual_conv(1, 1, 3, Padding::Valid, &[1.0, 1.0, 1.0], None);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0], &[1, 1, 5]);
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 1, 3]);
        assert_eq!(y.data(), &[6.0, 9.0, 12.0]); // moving window sums
    }

    #[test]
    fn same_padding_preserves_length_odd_kernel() {
        let mut conv = manual_conv(1, 1, 3, Padding::Same, &[0.0, 1.0, 0.0], None);
        let x = Tensor::from_vec(vec![5.0, 6.0, 7.0], &[1, 1, 3]);
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 1, 3]);
        assert_eq!(y.data(), &[5.0, 6.0, 7.0]); // center tap = identity
    }

    #[test]
    fn same_padding_even_kernel_and_long_kernels() {
        let mut r = rng(1);
        for k in [2, 4, 5, 7, 9, 15, 25] {
            let conv = Conv1d::new(&mut r, 1, 1, k, Padding::Same);
            assert_eq!(conv.out_len(510), 510, "k={k}");
        }
    }

    #[test]
    fn stride_two_halves_output() {
        let mut r = rng(2);
        let conv = Conv1d::with_options(&mut r, 1, 4, 3, Padding::Same, 2, 1, true);
        assert_eq!(conv.out_len(10), 5);
        assert_eq!(conv.out_len(9), 5);
    }

    #[test]
    fn dilation_expands_receptive_field() {
        // k=2, dilation=2 spans 3 inputs: y[t] = x[t] + x[t+2] (valid).
        let mut conv = manual_conv(1, 1, 2, Padding::Valid, &[1.0, 1.0], None);
        conv.dilation = 2;
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 4]);
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 1, 2]);
        assert_eq!(y.data(), &[4.0, 6.0]);
    }

    #[test]
    fn bias_shifts_output() {
        let mut conv = manual_conv(1, 1, 1, Padding::Same, &[1.0], Some(&[10.0]));
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 1, 2]);
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[11.0, 12.0]);
    }

    #[test]
    fn multi_channel_sums_contributions() {
        // 2 in-channels, k=1: y = 2*x0 + 3*x1.
        let mut conv = manual_conv(2, 1, 1, Padding::Same, &[2.0, 3.0], None);
        let x = Tensor::from_vec(vec![1.0, 1.0, 10.0, 10.0], &[1, 2, 2]);
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[32.0, 32.0]);
    }

    #[test]
    fn backward_bias_grad_is_sum_of_upstream() {
        let mut conv = manual_conv(1, 1, 1, Padding::Same, &[1.0], Some(&[0.0]));
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 1, 3]);
        let _ = conv.forward(&x, Mode::Train);
        let _ = conv.backward(&Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 1, 3]));
        let mut bias_grad = 0.0;
        conv.visit_params(&mut |p| {
            if p.value.shape() == [1] {
                bias_grad = p.grad.data()[0];
            }
        });
        assert_eq!(bias_grad, 6.0);
    }

    #[test]
    fn param_count_matches_formula() {
        let mut r = rng(3);
        let mut conv = Conv1d::new(&mut r, 16, 32, 5, Padding::Same);
        assert_eq!(conv.num_params(), 32 * 16 * 5 + 32);
    }
}
