//! Gated recurrent units with full backpropagation through time, plus the
//! bidirectional wrapper used by the CRNN and BiGRU baselines.
//!
//! Inputs follow the workspace convention `[batch, channels, time]`; the
//! recurrence runs along the time axis and the hidden state is exposed as
//! output channels.

use crate::init;
use crate::layer::{Layer, Mode, Param};
use crate::tensor::Tensor;
use rand::Rng;

/// Per-timestep caches needed by BPTT.
struct StepCache {
    x: Tensor,      // [b, in]
    h_prev: Tensor, // [b, h]
    r: Tensor,      // [b, h]
    z: Tensor,      // [b, h]
    n: Tensor,      // [b, h]
    hn_pre: Tensor, // [b, h]  (W_hn h_prev + b_hn), gated by r inside n
}

/// A unidirectional GRU producing the full hidden sequence `[b, hidden, t]`.
///
/// Gate equations follow the PyTorch convention:
/// `r = σ(W_ir x + b_ir + W_hr h + b_hr)`,
/// `z = σ(W_iz x + b_iz + W_hz h + b_hz)`,
/// `n = tanh(W_in x + b_in + r ∘ (W_hn h + b_hn))`,
/// `h' = (1 - z) ∘ n + z ∘ h`.
pub struct Gru {
    in_f: usize,
    hidden: usize,
    /// Stacked input weights `[3*hidden, in]` in gate order (r, z, n).
    w_i: Param,
    /// Stacked hidden weights `[3*hidden, hidden]` in gate order (r, z, n).
    w_h: Param,
    b_i: Param,
    b_h: Param,
    /// Process the sequence right-to-left (used by the bidirectional wrapper).
    reverse: bool,
    steps: Vec<StepCache>,
}

impl Gru {
    /// Creates a forward-direction GRU.
    pub fn new(rng: &mut impl Rng, in_f: usize, hidden: usize) -> Self {
        Self::with_direction(rng, in_f, hidden, false)
    }

    /// Creates a GRU that optionally scans the sequence in reverse.
    pub fn with_direction(rng: &mut impl Rng, in_f: usize, hidden: usize, reverse: bool) -> Self {
        let w_i = Param::new(init::xavier_uniform(rng, &[3 * hidden, in_f], in_f, hidden));
        let w_h = Param::new(init::xavier_uniform(rng, &[3 * hidden, hidden], hidden, hidden));
        Gru {
            in_f,
            hidden,
            w_i,
            w_h,
            b_i: Param::new(Tensor::zeros(&[3 * hidden])),
            b_h: Param::new(Tensor::zeros(&[3 * hidden])),
            reverse,
            steps: Vec::new(),
        }
    }

    /// Hidden size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Extracts timestep `t` as a `[b, in]` matrix.
    fn slice_t(x: &Tensor, t: usize) -> Tensor {
        let (b, c, tt) = x.dims3();
        let mut out = Tensor::zeros(&[b, c]);
        for bi in 0..b {
            for ci in 0..c {
                *out.at2_mut(bi, ci) = x.data()[(bi * c + ci) * tt + t];
            }
        }
        out
    }

    /// `x [b, in] * w[rows, in]^T + bias-slice` restricted to one gate block.
    fn gate_pre(x: &Tensor, w: &Tensor, b: &Tensor, gate: usize, hidden: usize) -> Tensor {
        let (batch, in_f) = x.dims2();
        let mut out = Tensor::zeros(&[batch, hidden]);
        let wdata = w.data();
        for bi in 0..batch {
            let xr = &x.data()[bi * in_f..(bi + 1) * in_f];
            for hi in 0..hidden {
                let row = gate * hidden + hi;
                let wr = &wdata[row * in_f..(row + 1) * in_f];
                let mut acc = b.data()[row];
                for (xv, wv) in xr.iter().zip(wr) {
                    acc += xv * wv;
                }
                *out.at2_mut(bi, hi) = acc;
            }
        }
        out
    }

    /// Accumulates `dW[gate block] += dpre^T x` and `db[gate block] += sum dpre`,
    /// returning `dx += dpre W[gate block]`.
    fn gate_back(
        dpre: &Tensor,
        x: &Tensor,
        w: &mut Param,
        b: &mut Param,
        gate: usize,
        hidden: usize,
        dx: &mut Tensor,
    ) {
        let (batch, in_f) = x.dims2();
        for bi in 0..batch {
            let xr = &x.data()[bi * in_f..(bi + 1) * in_f];
            for hi in 0..hidden {
                let g = dpre.at2(bi, hi);
                if g == 0.0 {
                    continue;
                }
                let row = gate * hidden + hi;
                b.grad.data_mut()[row] += g;
                let wg = &mut w.grad.data_mut()[row * in_f..(row + 1) * in_f];
                for (wgv, &xv) in wg.iter_mut().zip(xr) {
                    *wgv += g * xv;
                }
                let wr = &w.value.data()[row * in_f..(row + 1) * in_f];
                let dxr = &mut dx.data_mut()[bi * in_f..(bi + 1) * in_f];
                for (dxv, &wv) in dxr.iter_mut().zip(wr) {
                    *dxv += g * wv;
                }
            }
        }
    }
}

const GATE_R: usize = 0;
const GATE_Z: usize = 1;
const GATE_N: usize = 2;

impl Layer for Gru {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let (b, c, t) = x.dims3();
        assert_eq!(c, self.in_f, "Gru expected {} input channels, got {c}", self.in_f);
        let h = self.hidden;
        let mut out = Tensor::zeros(&[b, h, t]);
        let mut h_prev = Tensor::zeros(&[b, h]);
        self.steps.clear();
        self.steps.reserve(t);

        let order: Vec<usize> =
            if self.reverse { (0..t).rev().collect() } else { (0..t).collect() };
        for &ti in &order {
            let xt = Self::slice_t(x, ti);
            let r_pre = Self::gate_pre(&xt, &self.w_i.value, &self.b_i.value, GATE_R, h)
                .add(&Self::gate_pre(&h_prev, &self.w_h.value, &self.b_h.value, GATE_R, h));
            let z_pre = Self::gate_pre(&xt, &self.w_i.value, &self.b_i.value, GATE_Z, h)
                .add(&Self::gate_pre(&h_prev, &self.w_h.value, &self.b_h.value, GATE_Z, h));
            let r = r_pre.map(crate::activation::sigmoid);
            let z = z_pre.map(crate::activation::sigmoid);
            let hn_pre = Self::gate_pre(&h_prev, &self.w_h.value, &self.b_h.value, GATE_N, h);
            let n_pre = Self::gate_pre(&xt, &self.w_i.value, &self.b_i.value, GATE_N, h)
                .add(&r.mul(&hn_pre));
            let n = n_pre.map(f32::tanh);
            // h' = (1 - z) n + z h_prev
            let mut h_new = Tensor::zeros(&[b, h]);
            for i in 0..b * h {
                h_new.data_mut()[i] =
                    (1.0 - z.data()[i]) * n.data()[i] + z.data()[i] * h_prev.data()[i];
            }
            for bi in 0..b {
                for hi in 0..h {
                    *out.at3_mut(bi, hi, ti) = h_new.at2(bi, hi);
                }
            }
            self.steps.push(StepCache { x: xt, h_prev: h_prev.clone(), r, z, n, hn_pre });
            h_prev = h_new;
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (b, h, t) = grad.dims3();
        assert_eq!(h, self.hidden);
        let mut dx = Tensor::zeros(&[b, self.in_f, t]);
        let mut dh_next = Tensor::zeros(&[b, h]);

        let order: Vec<usize> =
            if self.reverse { (0..t).rev().collect() } else { (0..t).collect() };
        // Walk the cached steps backwards (they were pushed in scan order).
        for (step_idx, &ti) in order.iter().enumerate().rev() {
            let cache = &self.steps[step_idx];
            // dh = upstream grad at this timestep + carry from the next step.
            let mut dh = dh_next.clone();
            for bi in 0..b {
                for hi in 0..h {
                    *dh.at2_mut(bi, hi) += grad.at3(bi, hi, ti);
                }
            }
            let mut dz = Tensor::zeros(&[b, h]);
            let mut dn = Tensor::zeros(&[b, h]);
            let mut dh_prev = Tensor::zeros(&[b, h]);
            for i in 0..b * h {
                let dhv = dh.data()[i];
                dz.data_mut()[i] = dhv * (cache.h_prev.data()[i] - cache.n.data()[i]);
                dn.data_mut()[i] = dhv * (1.0 - cache.z.data()[i]);
                dh_prev.data_mut()[i] = dhv * cache.z.data()[i];
            }
            // Through tanh.
            let mut dn_pre = Tensor::zeros(&[b, h]);
            for i in 0..b * h {
                let nv = cache.n.data()[i];
                dn_pre.data_mut()[i] = dn.data()[i] * (1.0 - nv * nv);
            }
            // n_pre = W_in x + b_in + r*hn_pre
            let mut dr = Tensor::zeros(&[b, h]);
            let mut dhn_pre = Tensor::zeros(&[b, h]);
            for i in 0..b * h {
                dr.data_mut()[i] = dn_pre.data()[i] * cache.hn_pre.data()[i];
                dhn_pre.data_mut()[i] = dn_pre.data()[i] * cache.r.data()[i];
            }
            // Through the sigmoids.
            let mut dr_pre = Tensor::zeros(&[b, h]);
            let mut dz_pre = Tensor::zeros(&[b, h]);
            for i in 0..b * h {
                let rv = cache.r.data()[i];
                let zv = cache.z.data()[i];
                dr_pre.data_mut()[i] = dr.data()[i] * rv * (1.0 - rv);
                dz_pre.data_mut()[i] = dz.data()[i] * zv * (1.0 - zv);
            }
            // Input-side contributions.
            let mut dxt = Tensor::zeros(&[b, self.in_f]);
            Gru::gate_back(&dr_pre, &cache.x, &mut self.w_i, &mut self.b_i, GATE_R, h, &mut dxt);
            Gru::gate_back(&dz_pre, &cache.x, &mut self.w_i, &mut self.b_i, GATE_Z, h, &mut dxt);
            Gru::gate_back(&dn_pre, &cache.x, &mut self.w_i, &mut self.b_i, GATE_N, h, &mut dxt);
            // Hidden-side contributions.
            Gru::gate_back(
                &dr_pre,
                &cache.h_prev,
                &mut self.w_h,
                &mut self.b_h,
                GATE_R,
                h,
                &mut dh_prev,
            );
            Gru::gate_back(
                &dz_pre,
                &cache.h_prev,
                &mut self.w_h,
                &mut self.b_h,
                GATE_Z,
                h,
                &mut dh_prev,
            );
            Gru::gate_back(
                &dhn_pre,
                &cache.h_prev,
                &mut self.w_h,
                &mut self.b_h,
                GATE_N,
                h,
                &mut dh_prev,
            );

            for bi in 0..b {
                for ci in 0..self.in_f {
                    *dx.at3_mut(bi, ci, ti) += dxt.at2(bi, ci);
                }
            }
            dh_next = dh_prev;
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w_i);
        f(&mut self.w_h);
        f(&mut self.b_i);
        f(&mut self.b_h);
    }
}

/// Bidirectional GRU: concatenates a forward and a reverse GRU along the
/// channel axis, producing `[b, 2*hidden, t]`.
pub struct BiGru {
    fwd: Gru,
    bwd: Gru,
}

impl BiGru {
    /// Creates a bidirectional GRU; each direction has `hidden` units.
    pub fn new(rng: &mut impl Rng, in_f: usize, hidden: usize) -> Self {
        BiGru {
            fwd: Gru::with_direction(rng, in_f, hidden, false),
            bwd: Gru::with_direction(rng, in_f, hidden, true),
        }
    }

    /// Per-direction hidden size (output channels are twice this).
    pub fn hidden(&self) -> usize {
        self.fwd.hidden()
    }
}

impl Layer for BiGru {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let yf = self.fwd.forward(x, mode);
        let yb = self.bwd.forward(x, mode);
        let (b, h, t) = yf.dims3();
        let mut out = Tensor::zeros(&[b, 2 * h, t]);
        for bi in 0..b {
            for hi in 0..h {
                out.row_mut(bi, hi).copy_from_slice(yf.row(bi, hi));
                out.row_mut(bi, h + hi).copy_from_slice(yb.row(bi, hi));
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (b, h2, t) = grad.dims3();
        let h = h2 / 2;
        let mut gf = Tensor::zeros(&[b, h, t]);
        let mut gb = Tensor::zeros(&[b, h, t]);
        for bi in 0..b {
            for hi in 0..h {
                gf.row_mut(bi, hi).copy_from_slice(grad.row(bi, hi));
                gb.row_mut(bi, hi).copy_from_slice(grad.row(bi, h + hi));
            }
        }
        let mut dx = self.fwd.backward(&gf);
        dx.add_assign(&self.bwd.backward(&gb));
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.fwd.visit_params(f);
        self.bwd.visit_params(f);
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.fwd.visit_state(f);
        self.bwd.visit_state(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{randn_tensor, rng};

    #[test]
    fn gru_output_shape() {
        let mut r = rng(0);
        let mut gru = Gru::new(&mut r, 3, 5);
        let x = randn_tensor(&mut r, &[2, 3, 7], 1.0);
        let y = gru.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 5, 7]);
        assert!(y.all_finite());
    }

    #[test]
    fn gru_zero_input_zero_weights_gives_zero() {
        let mut r = rng(1);
        let mut gru = Gru::new(&mut r, 2, 3);
        gru.w_i.value.fill(0.0);
        gru.w_h.value.fill(0.0);
        let x = Tensor::zeros(&[1, 2, 4]);
        let y = gru.forward(&x, Mode::Eval);
        // With zero weights and biases, n = tanh(0) = 0 and h stays 0.
        assert!(y.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gru_hidden_is_bounded() {
        // GRU hidden state is a convex combination of tanh outputs: |h| <= 1.
        let mut r = rng(2);
        let mut gru = Gru::new(&mut r, 2, 4);
        let x = randn_tensor(&mut r, &[2, 2, 20], 10.0);
        let y = gru.forward(&x, Mode::Eval);
        assert!(y.data().iter().all(|&v| v.abs() <= 1.0 + 1e-5));
    }

    #[test]
    fn reverse_gru_sees_sequence_backwards() {
        // With a reverse GRU, the output at the LAST timestep only depends on
        // the last input; flipping the rest of the input must not change it.
        let mut r = rng(3);
        let mut gru = Gru::with_direction(&mut r, 1, 3, true);
        let x1 = Tensor::from_vec(vec![1.0, 2.0, 3.0, 9.0], &[1, 1, 4]);
        let x2 = Tensor::from_vec(vec![5.0, -1.0, 0.0, 9.0], &[1, 1, 4]);
        let y1 = gru.forward(&x1, Mode::Eval);
        let last1: Vec<f32> = (0..3).map(|h| y1.at3(0, h, 3)).collect();
        let y2 = gru.forward(&x2, Mode::Eval);
        let last2: Vec<f32> = (0..3).map(|h| y2.at3(0, h, 3)).collect();
        for (a, b) in last1.iter().zip(&last2) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn bigru_doubles_channels() {
        let mut r = rng(4);
        let mut g = BiGru::new(&mut r, 3, 6);
        let x = randn_tensor(&mut r, &[2, 3, 5], 1.0);
        let y = g.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 12, 5]);
        let gx = g.backward(&Tensor::full(&[2, 12, 5], 0.1));
        assert_eq!(gx.shape(), &[2, 3, 5]);
        assert!(gx.all_finite());
    }

    #[test]
    fn gru_param_count() {
        let mut r = rng(5);
        let mut gru = Gru::new(&mut r, 4, 8);
        // w_i: 3*8*4, w_h: 3*8*8, b_i + b_h: 2*3*8
        assert_eq!(gru.num_params(), 96 + 192 + 48);
    }
}
