//! Dense row-major `f32` tensor used throughout the workspace.
//!
//! The tensor is deliberately minimal: NILM models only need rank-1..3
//! tensors with a handful of elementwise and matrix operations. Layers in
//! this crate operate directly on the backing slice for speed; the methods
//! here cover construction, shape bookkeeping and the generic math shared by
//! several layers.

use std::fmt;

/// A dense row-major tensor of `f32` values.
///
/// Shape conventions used across the workspace:
/// - rank 1: `[n]` vectors (biases, per-timestep series)
/// - rank 2: `[rows, cols]` matrices (linear weights, batched features)
/// - rank 3: `[batch, channels, time]` feature maps (all sequence models)
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        Tensor { data: vec![0.0; n], shape: shape.to_vec() }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n = shape.iter().product();
        Tensor { data: vec![value; n], shape: shape.to_vec() }
    }

    /// Wraps an existing buffer. Panics if `data.len()` does not match `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(data.len(), n, "data length {} != shape product {}", data.len(), n);
        Tensor { data, shape: shape.to_vec() }
    }

    /// A rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor { data: data.to_vec(), shape: vec![data.len()] }
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The shape slice.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Rank (number of dimensions).
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Read-only view of the backing buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Dimensions of a rank-2 tensor as `(rows, cols)`.
    #[inline]
    pub fn dims2(&self) -> (usize, usize) {
        assert_eq!(self.rank(), 2, "expected rank-2 tensor, got shape {:?}", self.shape);
        (self.shape[0], self.shape[1])
    }

    /// Dimensions of a rank-3 tensor as `(batch, channels, time)`.
    #[inline]
    pub fn dims3(&self) -> (usize, usize, usize) {
        assert_eq!(self.rank(), 3, "expected rank-3 tensor, got shape {:?}", self.shape);
        (self.shape[0], self.shape[1], self.shape[2])
    }

    /// Element access for rank-3 tensors.
    #[inline]
    pub fn at3(&self, b: usize, c: usize, t: usize) -> f32 {
        let (_, ch, tt) = self.dims3();
        self.data[(b * ch + c) * tt + t]
    }

    /// Mutable element access for rank-3 tensors.
    #[inline]
    pub fn at3_mut(&mut self, b: usize, c: usize, t: usize) -> &mut f32 {
        let (_, ch, tt) = self.dims3();
        &mut self.data[(b * ch + c) * tt + t]
    }

    /// Element access for rank-2 tensors.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        let (_, cols) = self.dims2();
        self.data[r * cols + c]
    }

    /// Mutable element access for rank-2 tensors.
    #[inline]
    pub fn at2_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        let (_, cols) = self.dims2();
        &mut self.data[r * cols + c]
    }

    /// The contiguous `[channels, time]` slab for one batch item of a rank-3 tensor.
    #[inline]
    pub fn batch_slice(&self, b: usize) -> &[f32] {
        let (_, c, t) = self.dims3();
        &self.data[b * c * t..(b + 1) * c * t]
    }

    /// The contiguous time row for `(batch, channel)` of a rank-3 tensor.
    #[inline]
    pub fn row(&self, b: usize, c: usize) -> &[f32] {
        let (_, ch, t) = self.dims3();
        let start = (b * ch + c) * t;
        &self.data[start..start + t]
    }

    /// Mutable time row for `(batch, channel)` of a rank-3 tensor.
    #[inline]
    pub fn row_mut(&mut self, b: usize, c: usize) -> &mut [f32] {
        let (_, ch, t) = self.dims3();
        let start = (b * ch + c) * t;
        &mut self.data[start..start + t]
    }

    /// Returns a reshaped copy sharing no storage. Panics if element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.len(), "cannot reshape {:?} into {:?}", self.shape, shape);
        Tensor { data: self.data.clone(), shape: shape.to_vec() }
    }

    /// Reshapes in place without copying.
    pub fn reshape_inplace(&mut self, shape: &[usize]) {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.len(), "cannot reshape {:?} into {:?}", self.shape, shape);
        self.shape = shape.to_vec();
    }

    /// Resizes the tensor to `shape`, reusing the existing allocation when
    /// capacity allows. Contents are unspecified afterwards — this is the
    /// primitive behind reusable batch scratch buffers.
    pub fn resize(&mut self, shape: &[usize]) {
        let n: usize = shape.iter().product();
        if self.data.capacity() < n {
            // Growing: a fresh allocation avoids realloc copying the stale
            // contents we are about to overwrite anyway.
            self.data = Vec::with_capacity(n);
        }
        self.data.resize(n, 0.0);
        self.shape.clear();
        self.shape.extend_from_slice(shape);
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Elementwise addition, returning a new tensor.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in add");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Tensor { data, shape: self.shape.clone() }
    }

    /// In-place elementwise addition.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in axpy");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * *b;
        }
    }

    /// Elementwise subtraction, returning a new tensor.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in sub");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Tensor { data, shape: self.shape.clone() }
    }

    /// Elementwise (Hadamard) product, returning a new tensor.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in mul");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect();
        Tensor { data, shape: self.shape.clone() }
    }

    /// Scalar multiplication, returning a new tensor.
    pub fn scale(&self, alpha: f32) -> Tensor {
        let data = self.data.iter().map(|a| a * alpha).collect();
        Tensor { data, shape: self.shape.clone() }
    }

    /// In-place scalar multiplication.
    pub fn scale_inplace(&mut self, alpha: f32) {
        self.data.iter_mut().for_each(|a| *a *= alpha);
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Tensor { data, shape: self.shape.clone() }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Matrix multiplication of rank-2 tensors: `[m,k] x [k,n] -> [m,n]`,
    /// dispatched to the blocked, packed kernel in [`crate::gemm`].
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k) = self.dims2();
        let (k2, n) = other.dims2();
        assert_eq!(k, k2, "matmul inner dims mismatch: {} vs {}", k, k2);
        let mut out = vec![0.0f32; m * n];
        crate::gemm::gemm(
            m,
            n,
            k,
            &self.data,
            crate::gemm::Layout::Normal,
            &other.data,
            crate::gemm::Layout::Normal,
            &mut out,
            false,
        );
        Tensor { data: out, shape: vec![m, n] }
    }

    /// Transpose of a rank-2 tensor.
    pub fn transpose2(&self) -> Tensor {
        let (m, n) = self.dims2();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor { data: out, shape: vec![n, m] }
    }

    /// Frobenius/L2 norm of all elements.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.len() <= 16 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(
                f,
                ", data=[{:.4}, {:.4}, ... {:.4}])",
                self.data[0],
                self.data[1],
                self.data[self.len() - 1]
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_len() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.at2(0, 1), 2.0);
        assert_eq!(t.at2(1, 0), 3.0);
        assert_eq!(t.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_shape() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn rank3_indexing_is_row_major() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]);
        assert_eq!(t.at3(0, 0, 0), 0.0);
        assert_eq!(t.at3(0, 1, 0), 4.0);
        assert_eq!(t.at3(1, 0, 0), 12.0);
        assert_eq!(t.at3(1, 2, 3), 23.0);
        assert_eq!(t.row(1, 2), &[20.0, 21.0, 22.0, 23.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose2_is_involution() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let tt = a.transpose2().transpose2();
        assert_eq!(tt, a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        let mut c = a.clone();
        c.axpy(0.5, &b);
        assert_eq!(c.data(), &[3.0, 4.5, 6.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        assert_eq!(a.sum(), 2.0);
        assert!((a.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -2.0);
        assert!((a.norm() - (14.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let b = a.reshape(&[3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_rejects_wrong_size() {
        let a = Tensor::zeros(&[2, 3]);
        let _ = a.reshape(&[4, 2]);
    }
}
