//! Multi-head self-attention, sinusoidal positional encoding and a
//! post-norm transformer encoder block (the TransNILM substrate).

use crate::activation::{softmax_backward_rows, softmax_rows, Gelu};
use crate::layer::{Layer, Mode, Param};
use crate::linear::TimeDistributed;
use crate::norm::LayerNorm;
use crate::tensor::Tensor;
use rand::Rng;

/// Fixed sinusoidal positional encoding added to `[b, d, t]` inputs.
#[derive(Default)]
pub struct PositionalEncoding;

impl PositionalEncoding {
    /// The encoding value for channel `c` (of `d`) at position `t`.
    fn value(c: usize, d: usize, t: usize) -> f32 {
        let i = (c / 2) as f32;
        let angle = t as f32 / (10_000f32).powf(2.0 * i / d as f32);
        if c % 2 == 0 {
            angle.sin()
        } else {
            angle.cos()
        }
    }
}

impl Layer for PositionalEncoding {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let (b, d, _t) = x.dims3();
        let mut out = x.clone();
        for bi in 0..b {
            for ci in 0..d {
                let row = out.row_mut(bi, ci);
                for (ti, v) in row.iter_mut().enumerate() {
                    *v += Self::value(ci, d, ti);
                }
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        grad.clone() // additive constant
    }
}

/// Per-batch caches for attention backward.
struct AttnCache {
    xt: Tensor,        // [t, d] input, time-major
    q: Tensor,         // [t, d]
    k: Tensor,         // [t, d]
    v: Tensor,         // [t, d]
    attn: Vec<Tensor>, // per head: [t, t] softmax rows
    concat: Tensor,    // [t, d] head outputs before the output projection
}

/// Multi-head self-attention over `[batch, d_model, time]`.
pub struct MultiHeadSelfAttention {
    d_model: usize,
    heads: usize,
    w_q: Param, // [d, d]
    w_k: Param,
    w_v: Param,
    w_o: Param,
    caches: Vec<AttnCache>,
    retain_attention: bool,
    retained: Vec<Tensor>,
}

impl MultiHeadSelfAttention {
    /// Creates an attention layer; `d_model` must be divisible by `heads`.
    pub fn new(rng: &mut impl Rng, d_model: usize, heads: usize) -> Self {
        assert!(
            heads > 0 && d_model % heads == 0,
            "d_model {d_model} not divisible by heads {heads}"
        );
        let mk = |rng: &mut dyn FnMut() -> Tensor| Param::new(rng());
        let mut sample = || crate::init::xavier_uniform(rng, &[d_model, d_model], d_model, d_model);
        MultiHeadSelfAttention {
            d_model,
            heads,
            w_q: mk(&mut sample),
            w_k: mk(&mut sample),
            w_v: mk(&mut sample),
            w_o: mk(&mut sample),
            caches: Vec::new(),
            retain_attention: false,
            retained: Vec::new(),
        }
    }

    /// When enabled, every forward pass (including [`Mode::Infer`]) keeps
    /// the head-averaged attention map per batch item, readable through
    /// [`MultiHeadSelfAttention::retained_attention`]. This is the hook for
    /// attention-rollout localization: the maps are forward products, not
    /// backward caches, so retaining them does not violate the `Infer`
    /// no-backward-bookkeeping contract.
    pub fn set_retain_attention(&mut self, retain: bool) {
        self.retain_attention = retain;
        if !retain {
            self.retained.clear();
        }
    }

    /// The head-averaged `[t, t]` attention map of each batch item from the
    /// most recent forward pass (empty unless
    /// [`MultiHeadSelfAttention::set_retain_attention`] was enabled).
    pub fn retained_attention(&self) -> &[Tensor] {
        &self.retained
    }

    /// `[b, d, t]` batch item -> time-major `[t, d]` matrix.
    fn to_time_major(x: &Tensor, bi: usize) -> Tensor {
        let (_, d, t) = x.dims3();
        let mut out = Tensor::zeros(&[t, d]);
        for ci in 0..d {
            let row = x.row(bi, ci);
            for (ti, &v) in row.iter().enumerate() {
                *out.at2_mut(ti, ci) = v;
            }
        }
        out
    }

    /// Copies a time-major `[t, d]` matrix into batch item `bi` of `[b, d, t]`.
    fn from_time_major(dst: &mut Tensor, src: &Tensor, bi: usize) {
        let (t, d) = src.dims2();
        for ci in 0..d {
            for ti in 0..t {
                *dst.at3_mut(bi, ci, ti) = src.at2(ti, ci);
            }
        }
    }

    /// Extracts head `h` columns: `[t, d] -> [t, dh]`.
    fn head(x: &Tensor, h: usize, dh: usize) -> Tensor {
        let (t, _) = x.dims2();
        let mut out = Tensor::zeros(&[t, dh]);
        for ti in 0..t {
            for j in 0..dh {
                *out.at2_mut(ti, j) = x.at2(ti, h * dh + j);
            }
        }
        out
    }

    /// Adds head `h` values back into the full-width matrix.
    fn add_head(dst: &mut Tensor, src: &Tensor, h: usize, dh: usize) {
        let (t, _) = src.dims2();
        for ti in 0..t {
            for j in 0..dh {
                *dst.at2_mut(ti, h * dh + j) += src.at2(ti, j);
            }
        }
    }
}

impl Layer for MultiHeadSelfAttention {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let (b, d, t) = x.dims3();
        assert_eq!(d, self.d_model);
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut out = Tensor::zeros(&[b, d, t]);
        self.caches.clear();
        self.retained.clear();

        for bi in 0..b {
            let xt = Self::to_time_major(x, bi); // [t, d]
            let q = xt.matmul(&self.w_q.value.transpose2());
            let k = xt.matmul(&self.w_k.value.transpose2());
            let v = xt.matmul(&self.w_v.value.transpose2());
            let mut concat = Tensor::zeros(&[t, d]);
            let mut attn_maps = Vec::with_capacity(self.heads);
            for h in 0..self.heads {
                let qh = Self::head(&q, h, dh);
                let kh = Self::head(&k, h, dh);
                let vh = Self::head(&v, h, dh);
                let scores = qh.matmul(&kh.transpose2()).scale(scale); // [t, t]
                let attn = softmax_rows(&scores);
                let oh = attn.matmul(&vh); // [t, dh]
                Self::add_head(&mut concat, &oh, h, dh);
                attn_maps.push(attn);
            }
            let y = concat.matmul(&self.w_o.value.transpose2()); // [t, d]
            Self::from_time_major(&mut out, &y, bi);
            if self.retain_attention {
                let mut mean = Tensor::zeros(&[t, t]);
                for attn in &attn_maps {
                    mean.add_assign(attn);
                }
                self.retained.push(mean.scale(1.0 / self.heads as f32));
            }
            if mode.caches_for_backward() {
                self.caches.push(AttnCache { xt, q, k, v, attn: attn_maps, concat });
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (b, d, t) = grad.dims3();
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut dx = Tensor::zeros(&[b, d, t]);

        for bi in 0..b {
            let cache = self
                .caches
                .get(bi)
                .expect("MultiHeadSelfAttention backward before forward (or after Infer)");
            let dy = Self::to_time_major(grad, bi); // [t, d]
            self.w_o.grad.add_assign(&dy.transpose2().matmul(&cache.concat)); // y = concat W_o^T
            let dconcat = dy.matmul(&self.w_o.value); // [t, d]

            let mut dq = Tensor::zeros(&[t, d]);
            let mut dk = Tensor::zeros(&[t, d]);
            let mut dv = Tensor::zeros(&[t, d]);
            for h in 0..self.heads {
                let doh = Self::head(&dconcat, h, dh); // [t, dh]
                let attn = &cache.attn[h];
                let vh = Self::head(&cache.v, h, dh);
                let qh = Self::head(&cache.q, h, dh);
                let kh = Self::head(&cache.k, h, dh);
                // o = attn v
                let dattn = doh.matmul(&vh.transpose2()); // [t, t]
                let dvh = attn.transpose2().matmul(&doh); // [t, dh]
                let dscores = softmax_backward_rows(attn, &dattn).scale(scale);
                let dqh = dscores.matmul(&kh); // [t, dh]
                let dkh = dscores.transpose2().matmul(&qh);
                Self::add_head(&mut dq, &dqh, h, dh);
                Self::add_head(&mut dk, &dkh, h, dh);
                Self::add_head(&mut dv, &dvh, h, dh);
            }
            // q = x W_q^T etc.
            self.w_q.grad.add_assign(&dq.transpose2().matmul(&cache.xt));
            self.w_k.grad.add_assign(&dk.transpose2().matmul(&cache.xt));
            self.w_v.grad.add_assign(&dv.transpose2().matmul(&cache.xt));
            let mut dxt = dq.matmul(&self.w_q.value);
            dxt.add_assign(&dk.matmul(&self.w_k.value));
            dxt.add_assign(&dv.matmul(&self.w_v.value));
            Self::from_time_major(&mut dx, &dxt, bi);
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w_q);
        f(&mut self.w_k);
        f(&mut self.w_v);
        f(&mut self.w_o);
    }
}

/// Post-norm transformer encoder block:
/// `y = LN(x + MHSA(x)); z = LN(y + FFN(y))` with a GELU feed-forward.
pub struct TransformerEncoderLayer {
    attn: MultiHeadSelfAttention,
    norm1: LayerNorm,
    ff1: TimeDistributed,
    gelu: Gelu,
    ff2: TimeDistributed,
    norm2: LayerNorm,
}

impl TransformerEncoderLayer {
    /// Creates an encoder block with model width `d_model`, `heads` attention
    /// heads, and a feed-forward hidden width `d_ff`.
    pub fn new(rng: &mut impl Rng, d_model: usize, heads: usize, d_ff: usize) -> Self {
        TransformerEncoderLayer {
            attn: MultiHeadSelfAttention::new(rng, d_model, heads),
            norm1: LayerNorm::new(d_model),
            ff1: TimeDistributed::new(rng, d_model, d_ff),
            gelu: Gelu::default(),
            ff2: TimeDistributed::new(rng, d_ff, d_model),
            norm2: LayerNorm::new(d_model),
        }
    }

    /// Forwards to [`MultiHeadSelfAttention::set_retain_attention`] on the
    /// block's attention sublayer.
    pub fn set_retain_attention(&mut self, retain: bool) {
        self.attn.set_retain_attention(retain);
    }

    /// The retained head-averaged attention maps of the block's attention
    /// sublayer (see [`MultiHeadSelfAttention::retained_attention`]).
    pub fn retained_attention(&self) -> &[Tensor] {
        self.attn.retained_attention()
    }
}

impl Layer for TransformerEncoderLayer {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let a = self.attn.forward(x, mode);
        let y = self.norm1.forward(&x.add(&a), mode);
        let f = self.ff2.forward(&self.gelu.forward(&self.ff1.forward(&y, mode), mode), mode);
        self.norm2.forward(&y.add(&f), mode)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let d2 = self.norm2.backward(grad);
        // z-input = y + f: gradient flows to both.
        let df = self.ff1.backward(&self.gelu.backward(&self.ff2.backward(&d2)));
        let dy = d2.add(&df);
        let d1 = self.norm1.backward(&dy);
        // y-input = x + a.
        let da = self.attn.backward(&d1);
        d1.add(&da)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.attn.visit_params(f);
        self.norm1.visit_params(f);
        self.ff1.visit_params(f);
        self.ff2.visit_params(f);
        self.norm2.visit_params(f);
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.attn.visit_state(f);
        self.norm1.visit_state(f);
        self.ff1.visit_state(f);
        self.ff2.visit_state(f);
        self.norm2.visit_state(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{randn_tensor, rng};

    #[test]
    fn positional_encoding_is_additive_and_bounded() {
        let mut pe = PositionalEncoding;
        let x = Tensor::zeros(&[1, 4, 8]);
        let y = pe.forward(&x, Mode::Eval);
        assert!(y.data().iter().all(|v| v.abs() <= 1.0));
        // position 0, even channel: sin(0)=0; odd channel: cos(0)=1.
        assert_eq!(y.at3(0, 0, 0), 0.0);
        assert_eq!(y.at3(0, 1, 0), 1.0);
    }

    #[test]
    fn attention_shapes_roundtrip() {
        let mut r = rng(0);
        let mut attn = MultiHeadSelfAttention::new(&mut r, 8, 2);
        let x = randn_tensor(&mut r, &[2, 8, 6], 1.0);
        let y = attn.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 8, 6]);
        let gx = attn.backward(&Tensor::full(&[2, 8, 6], 0.1));
        assert_eq!(gx.shape(), &[2, 8, 6]);
        assert!(gx.all_finite());
    }

    #[test]
    fn attention_rows_mix_information_across_time() {
        // With identity-ish projections, changing the input at one timestep
        // should influence the output at other timesteps (unlike a conv with
        // kernel 1).
        let mut r = rng(1);
        let mut attn = MultiHeadSelfAttention::new(&mut r, 4, 1);
        let x1 = randn_tensor(&mut r, &[1, 4, 5], 1.0);
        let mut x2 = x1.clone();
        *x2.at3_mut(0, 0, 0) += 5.0;
        let y1 = attn.forward(&x1, Mode::Eval);
        let y2 = attn.forward(&x2, Mode::Eval);
        let delta_elsewhere: f32 = (0..4).map(|c| (y1.at3(0, c, 4) - y2.at3(0, c, 4)).abs()).sum();
        assert!(delta_elsewhere > 1e-6, "attention did not propagate along time");
    }

    #[test]
    fn encoder_layer_shapes() {
        let mut r = rng(2);
        let mut enc = TransformerEncoderLayer::new(&mut r, 8, 2, 16);
        let x = randn_tensor(&mut r, &[1, 8, 4], 1.0);
        let y = enc.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[1, 8, 4]);
        let gx = enc.backward(&Tensor::full(&[1, 8, 4], 0.05));
        assert_eq!(gx.shape(), &[1, 8, 4]);
        assert!(gx.all_finite());
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn attention_rejects_bad_head_count() {
        let mut r = rng(3);
        let _ = MultiHeadSelfAttention::new(&mut r, 6, 4);
    }

    #[test]
    fn encoder_infer_is_bit_identical_to_eval() {
        // The attention path (MHSA, LayerNorm, GELU, TimeDistributed) must
        // treat `Infer` as a pure cache-skipping knob: every output bit
        // matches an `Eval` forward of the same input.
        let mut r = rng(4);
        let mut enc = TransformerEncoderLayer::new(&mut r, 8, 2, 16);
        let x = randn_tensor(&mut r, &[2, 8, 6], 1.0);
        let eval = enc.forward(&x, Mode::Eval);
        let infer = enc.forward(&x, Mode::Infer);
        let bits = |t: &Tensor| -> Vec<u32> { t.data().iter().map(|v| v.to_bits()).collect() };
        assert_eq!(bits(&eval), bits(&infer), "Infer diverged from Eval through the encoder");
    }

    #[test]
    #[should_panic(expected = "before forward")]
    fn attention_backward_after_infer_panics() {
        let mut r = rng(5);
        let mut attn = MultiHeadSelfAttention::new(&mut r, 8, 2);
        let x = randn_tensor(&mut r, &[1, 8, 4], 1.0);
        let _ = attn.forward(&x, Mode::Infer);
        let _ = attn.backward(&Tensor::full(&[1, 8, 4], 0.1));
    }

    #[test]
    fn retained_attention_survives_infer_and_is_row_stochastic() {
        let mut r = rng(6);
        let mut attn = MultiHeadSelfAttention::new(&mut r, 8, 2);
        attn.set_retain_attention(true);
        let x = randn_tensor(&mut r, &[2, 8, 5], 1.0);
        let _ = attn.forward(&x, Mode::Infer);
        let maps = attn.retained_attention();
        assert_eq!(maps.len(), 2, "one retained map per batch item");
        for map in maps {
            assert_eq!(map.shape(), &[5, 5]);
            for ti in 0..5 {
                let row_sum: f32 = (0..5).map(|tj| map.at2(ti, tj)).sum();
                assert!((row_sum - 1.0).abs() < 1e-5, "head-averaged rows must sum to 1");
            }
        }
        attn.set_retain_attention(false);
        assert!(attn.retained_attention().is_empty());
    }
}
