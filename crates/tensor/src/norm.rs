//! Normalization layers: per-channel batch normalization for conv stacks and
//! per-position layer normalization for transformer blocks.

use crate::layer::{Layer, Mode, Param};
use crate::tensor::Tensor;

/// Lane-wise `(Σx, Σx²)` over rows of a `[batch, channels, time]` tensor
/// for one channel: eight partial accumulators per statistic so the
/// reduction vectorizes (a single scalar accumulator is a serial
/// dependency chain the compiler cannot widen).
fn channel_sums(x: &Tensor, b: usize, ci: usize) -> (f32, f32) {
    const LANES: usize = 8;
    let mut s = [0.0f32; LANES];
    let mut q = [0.0f32; LANES];
    for bi in 0..b {
        let row = x.row(bi, ci);
        let mut chunks = row.chunks_exact(LANES);
        for chunk in &mut chunks {
            for l in 0..LANES {
                s[l] += chunk[l];
                q[l] += chunk[l] * chunk[l];
            }
        }
        for &v in chunks.remainder() {
            s[0] += v;
            q[0] += v * v;
        }
    }
    (s.iter().sum(), q.iter().sum())
}

/// Batch normalization over `[batch, channels, time]`: statistics are
/// computed per channel across the batch and time axes.
pub struct BatchNorm1d {
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Param,
    beta: Param,
    // Persistent buffers (part of the eval state, serialized by
    // `visit_state` alongside the trainable parameters).
    running_mean: Tensor,
    running_var: Tensor,
    // Caches for backward.
    xhat: Option<Tensor>,
    inv_std: Vec<f32>,
    last_mode: Mode,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer for `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        BatchNorm1d {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Param::new(Tensor::full(&[channels], 1.0)),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::full(&[channels], 1.0),
            xhat: None,
            inv_std: vec![0.0; channels],
            last_mode: Mode::Train,
        }
    }
}

impl Layer for BatchNorm1d {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let (b, c, t) = x.dims3();
        assert_eq!(c, self.channels, "BatchNorm1d expected {} channels, got {c}", self.channels);
        let n = (b * t) as f32;
        let mut out = Tensor::zeros(&[b, c, t]);
        self.last_mode = mode;

        if mode == Mode::Infer {
            // Inference fast path: running statistics, one fused pass, and
            // no normalized-input buffer (backward after an `Infer` forward
            // is a contract violation and panics on the missing cache). The
            // per-element operation order matches the eval path exactly —
            // `g * ((v - mean) * inv_std) + be` — so the two modes stay
            // bit-identical.
            self.xhat = None;
            for ci in 0..c {
                let mean = self.running_mean.data()[ci];
                let var = self.running_var.data()[ci];
                let inv_std = 1.0 / (var + self.eps).sqrt();
                let g = self.gamma.value.data()[ci];
                let be = self.beta.value.data()[ci];
                for bi in 0..b {
                    let xr = x.row(bi, ci);
                    let or = out.row_mut(bi, ci);
                    for (o, &v) in or.iter_mut().zip(xr) {
                        *o = g * ((v - mean) * inv_std) + be;
                    }
                }
            }
            return out;
        }

        // Reuse the previous call's cache allocation; contents are fully
        // overwritten below.
        let mut xhat = self.xhat.take().unwrap_or_else(|| Tensor::zeros(&[0]));
        xhat.resize(&[b, c, t]);

        for ci in 0..c {
            let (mean, var) = match mode {
                Mode::Train => {
                    let (sum, sumsq) = channel_sums(x, b, ci);
                    let mean = sum / n;
                    let var = (sumsq / n - mean * mean).max(0.0);
                    let rm = &mut self.running_mean.data_mut()[ci];
                    *rm = (1.0 - self.momentum) * *rm + self.momentum * mean;
                    let rv = &mut self.running_var.data_mut()[ci];
                    *rv = (1.0 - self.momentum) * *rv + self.momentum * var;
                    (mean, var)
                }
                // `Infer` returned above; listed only for exhaustiveness.
                Mode::Eval | Mode::Infer => {
                    (self.running_mean.data()[ci], self.running_var.data()[ci])
                }
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            self.inv_std[ci] = inv_std;
            let g = self.gamma.value.data()[ci];
            let be = self.beta.value.data()[ci];
            for bi in 0..b {
                let xr = x.row(bi, ci);
                let xh = xhat.row_mut(bi, ci);
                for (h, &v) in xh.iter_mut().zip(xr) {
                    *h = (v - mean) * inv_std;
                }
                let or = out.row_mut(bi, ci);
                for (o, &h) in or.iter_mut().zip(xhat.row(bi, ci)) {
                    *o = g * h + be;
                }
            }
        }
        self.xhat = Some(xhat);
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let xhat = self.xhat.as_ref().expect("BatchNorm1d backward before forward");
        let (b, c, t) = grad.dims3();
        let n = (b * t) as f32;
        let mut dx = Tensor::zeros(&[b, c, t]);

        for ci in 0..c {
            let g = self.gamma.value.data()[ci];
            let inv_std = self.inv_std[ci];
            // Accumulate per-channel reductions, lane-wise so they vectorize.
            const LANES: usize = 8;
            let mut s_dy = [0.0f32; LANES];
            let mut s_dyh = [0.0f32; LANES];
            for bi in 0..b {
                let gr = grad.row(bi, ci);
                let xh = xhat.row(bi, ci);
                let mut gc = gr.chunks_exact(LANES);
                let mut hc = xh.chunks_exact(LANES);
                for (gch, hch) in (&mut gc).zip(&mut hc) {
                    for l in 0..LANES {
                        s_dy[l] += gch[l];
                        s_dyh[l] += gch[l] * hch[l];
                    }
                }
                for (&gy, &h) in gc.remainder().iter().zip(hc.remainder()) {
                    s_dy[0] += gy;
                    s_dyh[0] += gy * h;
                }
            }
            let sum_dy: f32 = s_dy.iter().sum();
            let sum_dy_xhat: f32 = s_dyh.iter().sum();
            self.beta.grad.data_mut()[ci] += sum_dy;
            self.gamma.grad.data_mut()[ci] += sum_dy_xhat;

            match self.last_mode {
                Mode::Train => {
                    // Full backward through the batch statistics.
                    let k1 = g * inv_std / n;
                    for bi in 0..b {
                        let gr = grad.row(bi, ci);
                        let xh = xhat.row(bi, ci);
                        let dxr = dx.row_mut(bi, ci);
                        for ((d, &gy), &h) in dxr.iter_mut().zip(gr).zip(xh) {
                            *d = k1 * (n * gy - sum_dy - h * sum_dy_xhat);
                        }
                    }
                }
                // (`Infer` is unreachable here: its forward drops the xhat
                // cache, so backward panics before this match.)
                Mode::Eval | Mode::Infer => {
                    // Running stats are constants.
                    let k = g * inv_std;
                    for bi in 0..b {
                        let gr = grad.row(bi, ci);
                        let dxr = dx.row_mut(bi, ci);
                        for (d, &gy) in dxr.iter_mut().zip(gr) {
                            *d = k * gy;
                        }
                    }
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        f(&mut self.gamma.value);
        f(&mut self.beta.value);
        f(&mut self.running_mean);
        f(&mut self.running_var);
    }
}

/// Layer normalization over the channel dimension of `[batch, channels, time]`
/// (one mean/variance per `(batch, time)` position) — the transformer flavor.
pub struct LayerNorm {
    dim: usize,
    eps: f32,
    gamma: Param,
    beta: Param,
    xhat: Option<Tensor>,
    inv_std: Vec<f32>, // one per (batch, time) position
}

impl LayerNorm {
    /// Creates a layer norm over `dim` channels.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            dim,
            eps: 1e-5,
            gamma: Param::new(Tensor::full(&[dim], 1.0)),
            beta: Param::new(Tensor::zeros(&[dim])),
            xhat: None,
            inv_std: Vec::new(),
        }
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let (b, c, t) = x.dims3();
        assert_eq!(c, self.dim, "LayerNorm expected {} channels, got {c}", self.dim);
        let mut out = Tensor::zeros(&[b, c, t]);
        // Under `Mode::Infer` the normalized-input buffer and inverse
        // standard deviations exist only for backward, so they are skipped;
        // the per-element arithmetic below is shared between the modes, so
        // `Infer` stays bit-identical to `Eval`.
        let caches = mode.caches_for_backward();
        let mut xhat = caches.then(|| Tensor::zeros(&[b, c, t]));
        self.inv_std = if caches { vec![0.0; b * t] } else { Vec::new() };

        for bi in 0..b {
            for ti in 0..t {
                let mut sum = 0.0f32;
                let mut sumsq = 0.0f32;
                for ci in 0..c {
                    let v = x.at3(bi, ci, ti);
                    sum += v;
                    sumsq += v * v;
                }
                let mean = sum / c as f32;
                let var = (sumsq / c as f32 - mean * mean).max(0.0);
                let inv_std = 1.0 / (var + self.eps).sqrt();
                if caches {
                    self.inv_std[bi * t + ti] = inv_std;
                }
                for ci in 0..c {
                    let h = (x.at3(bi, ci, ti) - mean) * inv_std;
                    if let Some(xh) = &mut xhat {
                        *xh.at3_mut(bi, ci, ti) = h;
                    }
                    *out.at3_mut(bi, ci, ti) =
                        self.gamma.value.data()[ci] * h + self.beta.value.data()[ci];
                }
            }
        }
        self.xhat = xhat;
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let xhat = self.xhat.as_ref().expect("LayerNorm backward before forward");
        let (b, c, t) = grad.dims3();
        let mut dx = Tensor::zeros(&[b, c, t]);
        let cf = c as f32;

        for bi in 0..b {
            for ti in 0..t {
                let inv_std = self.inv_std[bi * t + ti];
                let mut sum_dyg = 0.0f32;
                let mut sum_dyg_xhat = 0.0f32;
                for ci in 0..c {
                    let gy = grad.at3(bi, ci, ti);
                    let h = xhat.at3(bi, ci, ti);
                    let g = self.gamma.value.data()[ci];
                    self.beta.grad.data_mut()[ci] += gy;
                    self.gamma.grad.data_mut()[ci] += gy * h;
                    sum_dyg += gy * g;
                    sum_dyg_xhat += gy * g * h;
                }
                for ci in 0..c {
                    let gy = grad.at3(bi, ci, ti);
                    let h = xhat.at3(bi, ci, ti);
                    let g = self.gamma.value.data()[ci];
                    *dx.at3_mut(bi, ci, ti) =
                        inv_std / cf * (cf * gy * g - sum_dyg - h * sum_dyg_xhat);
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batchnorm_train_normalizes_per_channel() {
        let mut bn = BatchNorm1d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[1, 2, 4]);
        let y = bn.forward(&x, Mode::Train);
        // Each channel should have ~zero mean and ~unit variance.
        for ci in 0..2 {
            let row = y.row(0, ci);
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm1d::new(1);
        // Prime the running stats with several train batches.
        let x = Tensor::from_vec(vec![2.0, 2.0, 2.0, 2.0], &[1, 1, 4]);
        for _ in 0..200 {
            let _ = bn.forward(&x, Mode::Train);
        }
        let y = bn.forward(&x, Mode::Eval);
        // After convergence: mean~2, var~0 => output ~ 0 everywhere.
        assert!(y.data().iter().all(|v| v.abs() < 0.1), "{:?}", y);
    }

    #[test]
    fn batchnorm_constant_input_is_finite() {
        let mut bn = BatchNorm1d::new(1);
        let x = Tensor::full(&[2, 1, 3], 5.0);
        let y = bn.forward(&x, Mode::Train);
        assert!(y.all_finite());
    }

    #[test]
    fn layernorm_normalizes_each_position() {
        let mut ln = LayerNorm::new(3);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 3, 2]);
        let y = ln.forward(&x, Mode::Train);
        for ti in 0..2 {
            let vals: Vec<f32> = (0..3).map(|c| y.at3(0, c, ti)).collect();
            let mean: f32 = vals.iter().sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-5);
        }
    }

    #[test]
    fn norm_layers_expose_params() {
        let mut bn = BatchNorm1d::new(8);
        assert_eq!(bn.num_params(), 16);
        let mut ln = LayerNorm::new(8);
        assert_eq!(ln.num_params(), 16);
    }
}
