//! im2col / col2im lowering for 1-D convolution.
//!
//! A convolution `[C_in, T_in] -> [C_out, T_out]` with kernel size `K`
//! becomes one GEMM per batch item once the input is unfolded into a column
//! matrix `col[(c_in * K + k), t_out] = x[c_in, t_out * stride + k * dilation
//! - pad_left]` (zero outside the input). The weight tensor `[C_out, C_in,
//! K]` is already the row-major matrix `[C_out, C_in * K]`, so
//!
//! - forward: `out = W · col`,
//! - weight gradient: `dW += grad · colᵀ` (per batch item),
//! - input gradient: `dx = Ŵ · gcol`, where `Ŵ[(c_in), (c_out * K + k)] =
//!   W[c_out, c_in, k]` and `gcol` unfolds the *output* gradient over input
//!   positions (the transposed-convolution form of the same lowering, built
//!   by [`grad2col`]).
//!
//! The row orderings are chosen so every GEMM accumulates its inner
//! dimension in exactly the order the shifted-axpy reference path does,
//! which keeps the convolution backends bit-identical (see
//! `tests/conv_gemm_equivalence.rs`). The same column matrices feed both
//! the portable microkernel and the [`crate::simd`] kernels — the SIMD
//! backend is a different *consumer* of this lowering, not a different
//! lowering — so the ordering contract covers it too.

/// Geometry of one lowered convolution: every index computation lives here
/// so the GEMM path and the reference path cannot drift apart.
#[derive(Clone, Copy, Debug)]
pub struct ConvGeometry {
    /// Input channels.
    pub in_c: usize,
    /// Output channels.
    pub out_c: usize,
    /// Kernel taps.
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Dilation.
    pub dilation: usize,
    /// Zeros implicitly prepended to the input.
    pub pad_left: usize,
    /// Input length.
    pub t_in: usize,
    /// Output length.
    pub t_out: usize,
}

impl ConvGeometry {
    /// Rows of the forward column matrix (`C_in * K`).
    pub fn col_rows(&self) -> usize {
        self.in_c * self.k
    }

    /// Rows of the gradient column matrix (`C_out * K`).
    pub fn gcol_rows(&self) -> usize {
        self.out_c * self.k
    }

    /// For kernel tap `k`, the half-open range of output positions whose
    /// input index `t_out * stride + k * dilation - pad_left` lies inside
    /// `[0, t_in)`.
    #[inline]
    pub fn valid_out_range(&self, tap: usize) -> (usize, usize, isize) {
        let offset = (tap * self.dilation) as isize - self.pad_left as isize;
        let s = self.stride as isize;
        let lo = if offset >= 0 { 0 } else { (-offset + s - 1) / s };
        let hi = ((self.t_in as isize - offset) + s - 1) / s;
        let lo = lo.clamp(0, self.t_out as isize) as usize;
        let hi = hi.clamp(0, self.t_out as isize) as usize;
        (lo, hi.max(lo), offset)
    }
}

/// Unfolds one batch item `x` (`[C_in, T_in]` row-major) into the column
/// block starting at column `col0` of a column matrix with row stride `ld`:
/// `col[(ci * K + k) * ld + col0 + t_out]`. Batched convolutions lay the
/// items of a batch side by side (`ld = batch * t_out`) so the whole batch
/// becomes a single wide GEMM. Positions outside the input are zeroed.
pub fn im2col(geo: &ConvGeometry, x: &[f32], col: &mut [f32], ld: usize, col0: usize) {
    debug_assert_eq!(x.len(), geo.in_c * geo.t_in);
    debug_assert!(col.len() >= geo.col_rows() * ld);
    debug_assert!(col0 + geo.t_out <= ld);
    let t_out = geo.t_out;
    for ci in 0..geo.in_c {
        let xr = &x[ci * geo.t_in..(ci + 1) * geo.t_in];
        for tap in 0..geo.k {
            let (lo, hi, offset) = geo.valid_out_range(tap);
            let start = (ci * geo.k + tap) * ld + col0;
            let row = &mut col[start..start + t_out];
            if lo >= hi {
                // Tap never overlaps the input (deep padding): the whole
                // row is padding zeros, and `lo + offset` may be negative.
                row.iter_mut().for_each(|v| *v = 0.0);
                continue;
            }
            row[..lo].iter_mut().for_each(|v| *v = 0.0);
            row[hi..].iter_mut().for_each(|v| *v = 0.0);
            if geo.stride == 1 {
                let ilo = (lo as isize + offset) as usize;
                let ihi = (hi as isize + offset) as usize;
                row[lo..hi].copy_from_slice(&xr[ilo..ihi]);
            } else {
                for (to, v) in row[lo..hi].iter_mut().enumerate() {
                    let ti = ((lo + to) * geo.stride) as isize + offset;
                    *v = xr[ti as usize];
                }
            }
        }
    }
}

/// Unfolds one batch item's *output gradient* (`[C_out, T_out]` row-major)
/// over input positions, into the column block at `col0` of a matrix with
/// row stride `ld`: `gcol[(co * K + k) * ld + col0 + t_in] = grad[co,
/// t_out]` where `t_in = t_out * stride + k * dilation - pad_left`, and zero
/// where no output position maps there. This is the column matrix of the
/// transposed convolution that computes `dx`.
pub fn grad2col(geo: &ConvGeometry, grad: &[f32], gcol: &mut [f32], ld: usize, col0: usize) {
    debug_assert_eq!(grad.len(), geo.out_c * geo.t_out);
    debug_assert!(gcol.len() >= geo.gcol_rows() * ld);
    debug_assert!(col0 + geo.t_in <= ld);
    let t_in = geo.t_in;
    for co in 0..geo.out_c {
        let gr = &grad[co * geo.t_out..(co + 1) * geo.t_out];
        for tap in 0..geo.k {
            let (lo, hi, offset) = geo.valid_out_range(tap);
            let start = (co * geo.k + tap) * ld + col0;
            let row = &mut gcol[start..start + t_in];
            if lo >= hi {
                row.iter_mut().for_each(|v| *v = 0.0);
                continue;
            }
            if geo.stride == 1 {
                // t_in = t_out + offset: a contiguous shifted copy.
                let ilo = (lo as isize + offset) as usize;
                let ihi = (hi as isize + offset) as usize;
                row[..ilo].iter_mut().for_each(|v| *v = 0.0);
                row[ihi..].iter_mut().for_each(|v| *v = 0.0);
                row[ilo..ihi].copy_from_slice(&gr[lo..hi]);
            } else {
                row.iter_mut().for_each(|v| *v = 0.0);
                for to in lo..hi {
                    let ti = (to * geo.stride) as isize + offset;
                    row[ti as usize] = gr[to];
                }
            }
        }
    }
}

/// Builds `Ŵ[ci, co * K + k] = w[co, ci, k]` — the weight matrix of the
/// transposed convolution, with the inner dimension ordered `(co, k)` to
/// match the reference path's accumulation order.
pub fn weight_for_input_grad(geo: &ConvGeometry, w: &[f32], what: &mut [f32]) {
    debug_assert_eq!(w.len(), geo.out_c * geo.in_c * geo.k);
    debug_assert_eq!(what.len(), geo.in_c * geo.out_c * geo.k);
    let (in_c, out_c, k) = (geo.in_c, geo.out_c, geo.k);
    for ci in 0..in_c {
        for co in 0..out_c {
            let src = &w[(co * in_c + ci) * k..(co * in_c + ci + 1) * k];
            let dst = &mut what[(ci * out_c + co) * k..(ci * out_c + co + 1) * k];
            dst.copy_from_slice(src);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo(
        stride: usize,
        dilation: usize,
        pad_left: usize,
        t_in: usize,
        t_out: usize,
    ) -> ConvGeometry {
        ConvGeometry { in_c: 2, out_c: 3, k: 3, stride, dilation, pad_left, t_in, t_out }
    }

    #[test]
    fn im2col_valid_stride1_is_shifted_copies() {
        // k=3, no padding: col rows are x shifted by 0, 1, 2.
        let g = ConvGeometry {
            in_c: 1,
            out_c: 1,
            k: 3,
            stride: 1,
            dilation: 1,
            pad_left: 0,
            t_in: 5,
            t_out: 3,
        };
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut col = vec![0.0; 9];
        im2col(&g, &x, &mut col, g.t_out, 0);
        assert_eq!(col, vec![1.0, 2.0, 3.0, 2.0, 3.0, 4.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn im2col_zero_pads_outside_input() {
        let g = ConvGeometry {
            in_c: 1,
            out_c: 1,
            k: 3,
            stride: 1,
            dilation: 1,
            pad_left: 1,
            t_in: 3,
            t_out: 3,
        };
        let x = [7.0, 8.0, 9.0];
        let mut col = vec![-1.0; 9];
        im2col(&g, &x, &mut col, g.t_out, 0);
        assert_eq!(col, vec![0.0, 7.0, 8.0, 7.0, 8.0, 9.0, 8.0, 9.0, 0.0]);
    }

    #[test]
    fn im2col_stride_and_dilation() {
        // stride 2, dilation 2, k=2, t_in=6 -> effective kernel 3, t_out=2.
        let g = ConvGeometry {
            in_c: 1,
            out_c: 1,
            k: 2,
            stride: 2,
            dilation: 2,
            pad_left: 0,
            t_in: 6,
            t_out: 2,
        };
        let x = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let mut col = vec![0.0; 4];
        im2col(&g, &x, &mut col, g.t_out, 0);
        assert_eq!(col, vec![0.0, 2.0, 2.0, 4.0]);
    }

    #[test]
    fn grad2col_scatters_like_forward_gathers() {
        // Every (tap, t_out) pair lands at its forward input index.
        let g = geo(1, 1, 1, 4, 4);
        let grad: Vec<f32> = (0..g.out_c * g.t_out).map(|i| i as f32 + 1.0).collect();
        let mut gcol = vec![0.0; g.gcol_rows() * g.t_in];
        grad2col(&g, &grad, &mut gcol, g.t_in, 0);
        for co in 0..g.out_c {
            for tap in 0..g.k {
                let (lo, hi, offset) = g.valid_out_range(tap);
                let row = &gcol[(co * g.k + tap) * g.t_in..(co * g.k + tap + 1) * g.t_in];
                let mut expect = vec![0.0f32; g.t_in];
                for to in lo..hi {
                    let ti = (to as isize + offset) as usize;
                    expect[ti] = grad[co * g.t_out + to];
                }
                assert_eq!(row, &expect[..], "co={co} tap={tap}");
            }
        }
    }

    #[test]
    fn weight_permutation_round_trips() {
        let g = geo(1, 1, 0, 4, 2);
        let w: Vec<f32> = (0..g.out_c * g.in_c * g.k).map(|i| i as f32).collect();
        let mut what = vec![0.0; w.len()];
        weight_for_input_grad(&g, &w, &mut what);
        for co in 0..g.out_c {
            for ci in 0..g.in_c {
                for tap in 0..g.k {
                    assert_eq!(
                        what[(ci * g.out_c + co) * g.k + tap],
                        w[(co * g.in_c + ci) * g.k + tap]
                    );
                }
            }
        }
    }
}
