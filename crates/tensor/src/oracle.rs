//! Kernel-oracle test harness: every compute backend is checked against the
//! naive reference path across randomized shapes, in ULP.
//!
//! This is the gradcheck of the dispatch layer (compare
//! [`crate::gradcheck`], which plays the same role for backward passes):
//! any new backend — the SIMD kernels today, int8 or transformer-fused ops
//! tomorrow — lands by implementing the same operations and passing the same
//! specs. The harness lives in the library (not a test file) so integration
//! tests, property tests and downstream crates all drive one implementation.
//!
//! ## Tolerance model
//!
//! Backends are held to **bitwise equality** (a zero-ULP budget) whenever
//! [`crate::simd::simd_exact`] holds — every multiply-add on both paths is
//! fused, so reordering-free kernels must agree exactly, and any deviation
//! is an indexing bug, not floating-point noise. When the scalar path is
//! compiled without fused multiply-adds but the SIMD path runs (only
//! possible by forcing `NILM_BACKEND=simd` on such a build), each of the
//! `k` chain steps contracts differently and results drift: the budget is
//! then [`ULP_BUDGET_FMA`] ULP, with an absolute escape of [`ABS_ESCAPE`]
//! for near-zero outputs where cancellation makes ULP distance meaningless.
//! [`ulp_budget`] picks the applicable budget for the current build.

use crate::conv::{Conv1d, ConvBackend, Padding};
use crate::dispatch::Backend;
use crate::gemm::{fmadd, gemm_seq_mode, kernel_mode_for, Layout};
use crate::init::{randn_tensor, rng};
use crate::layer::{Layer, Mode};
use crate::tensor::Tensor;

/// ULP budget when every multiply-add is fused on both paths: none.
pub const ULP_BUDGET_EXACT: u64 = 0;

/// ULP budget when the scalar path's multiply-adds are unfused but the SIMD
/// path's are fused (one extra rounding per k-step, amplified by up to the
/// inner-dimension length on these kernels' shapes).
pub const ULP_BUDGET_FMA: u64 = 64;

/// Absolute-difference escape hatch used only under a nonzero ULP budget:
/// outputs this close are accepted regardless of ULP distance (catastrophic
/// cancellation near zero inflates ULP distance without indicating a bug).
pub const ABS_ESCAPE: f32 = 1e-5;

/// The ULP budget applicable to this build/machine: zero when backends are
/// bit-identical, [`ULP_BUDGET_FMA`] otherwise.
pub fn ulp_budget() -> u64 {
    if crate::simd::simd_exact() {
        ULP_BUDGET_EXACT
    } else {
        ULP_BUDGET_FMA
    }
}

/// Distance between two floats in units of last place, via the monotone
/// integer mapping of IEEE-754 bit patterns (adjacent representable floats
/// are 1 apart; `+0` and `-0` are 0 apart; any NaN is `u64::MAX` from
/// everything, including itself).
pub fn ulp_distance(a: f32, b: f32) -> u64 {
    if a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    fn monotone(x: f32) -> i64 {
        let bits = x.to_bits();
        if bits & 0x8000_0000 != 0 {
            -((bits & 0x7fff_ffff) as i64)
        } else {
            bits as i64
        }
    }
    monotone(a).abs_diff(monotone(b))
}

/// Worst-case deviation between two buffers.
#[derive(Clone, Copy, Debug, Default)]
pub struct UlpReport {
    /// Largest per-element ULP distance.
    pub max_ulp: u64,
    /// Largest per-element absolute difference.
    pub max_abs: f32,
    /// Index of the worst (by ULP) element, with its two values.
    pub worst: Option<(usize, f32, f32)>,
}

/// Compares `got` against `want` element-wise. Panics on length mismatch —
/// that is a shape bug, not a numeric one.
pub fn compare(got: &[f32], want: &[f32]) -> UlpReport {
    assert_eq!(got.len(), want.len(), "oracle compared buffers of different lengths");
    let mut report = UlpReport::default();
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        let ulp = ulp_distance(g, w);
        report.max_abs = report.max_abs.max((g - w).abs());
        if ulp > report.max_ulp || report.worst.is_none() {
            report.max_ulp = ulp;
            report.worst = Some((i, g, w));
        }
    }
    report
}

/// Whether a deviation is acceptable under `budget`: inside the ULP budget,
/// or (only when the budget is nonzero) within [`ABS_ESCAPE`] absolutely.
pub fn within_budget(report: &UlpReport, budget: u64) -> bool {
    report.max_ulp <= budget || (budget > 0 && report.max_abs <= ABS_ESCAPE)
}

/// Asserts `got` matches `want` within `budget` ULP, with a diagnostic
/// naming the worst element.
pub fn assert_within(label: &str, got: &[f32], want: &[f32], budget: u64) {
    let report = compare(got, want);
    assert!(
        within_budget(&report, budget),
        "{label}: max {} ULP (abs {:.3e}) exceeds budget {budget}; worst at {:?}",
        report.max_ulp,
        report.max_abs,
        report.worst,
    );
}

// ---- GEMM specs ----------------------------------------------------------

/// One reproducible GEMM problem; the oracle is a triple loop with the
/// crate's left-to-right k chain.
#[derive(Clone, Copy, Debug)]
pub struct GemmSpec {
    /// Output rows.
    pub m: usize,
    /// Output columns.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// How the `A` operand slice is laid out.
    pub a_layout: Layout,
    /// How the `B` operand slice is laid out.
    pub b_layout: Layout,
    /// `C += A·B` instead of `C = A·B`.
    pub accumulate: bool,
    /// Seed for the operand data.
    pub seed: u64,
}

impl GemmSpec {
    fn operands(&self) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut r = rng(self.seed);
        // Logical row-major A [m,k] and B [k,n]; layout variants below store
        // their transposes, so results are comparable across layouts.
        let a = randn_tensor(&mut r, &[self.m.max(1), self.k.max(1)], 1.0);
        let b = randn_tensor(&mut r, &[self.k.max(1), self.n.max(1)], 1.0);
        let c0 = randn_tensor(&mut r, &[self.m.max(1), self.n.max(1)], 1.0);
        let a = a.data()[..self.m * self.k].to_vec();
        let b = b.data()[..self.k * self.n].to_vec();
        let c0 = if self.accumulate {
            c0.data()[..self.m * self.n].to_vec()
        } else {
            vec![0.0; self.m * self.n]
        };
        (a, b, c0)
    }

    fn transpose(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
        let mut t = vec![0.0f32; src.len()];
        for r in 0..rows {
            for c in 0..cols {
                t[c * rows + r] = src[r * cols + c];
            }
        }
        t
    }

    /// The reference result: triple loop, k-terms strictly left to right —
    /// the chain every backend is contractually bound to.
    pub fn reference(&self) -> Vec<f32> {
        let (a, b, mut c) = self.operands();
        for i in 0..self.m {
            for p in 0..self.k {
                let av = a[i * self.k + p];
                for j in 0..self.n {
                    c[i * self.n + j] = fmadd(av, b[p * self.n + j], c[i * self.n + j]);
                }
            }
        }
        c
    }

    /// Runs the spec under `backend` ([`Backend::Naive`] = the reference)
    /// without touching any process-global state.
    pub fn run(&self, backend: Backend) -> Vec<f32> {
        if backend == Backend::Naive {
            return self.reference();
        }
        let (a, b, mut c) = self.operands();
        let a_stored = match self.a_layout {
            Layout::Normal => a,
            Layout::Transposed => Self::transpose(&a, self.m, self.k),
        };
        let b_stored = match self.b_layout {
            Layout::Normal => b,
            Layout::Transposed => Self::transpose(&b, self.k, self.n),
        };
        gemm_seq_mode(
            self.m,
            self.n,
            self.k,
            &a_stored,
            self.a_layout,
            &b_stored,
            self.b_layout,
            &mut c,
            self.accumulate,
            kernel_mode_for(Some(backend)),
        );
        c
    }

    /// Asserts `backend` reproduces the reference within `budget` ULP.
    pub fn check(&self, backend: Backend, budget: u64) {
        let got = self.run(backend);
        let want = self.reference();
        assert_within(
            &format!(
                "gemm[{backend}] m={} n={} k={} a={:?} b={:?} acc={} seed={}",
                self.m, self.n, self.k, self.a_layout, self.b_layout, self.accumulate, self.seed
            ),
            &got,
            &want,
            budget,
        );
    }
}

// ---- conv specs ----------------------------------------------------------

/// Forward output, input gradient and parameter gradients of one conv pass.
pub struct ConvOutputs {
    /// Forward output `[batch, out_c, t_out]`.
    pub y: Tensor,
    /// Input gradient `[batch, in_c, t_in]`.
    pub dx: Tensor,
    /// Parameter gradients in `visit_params` order (weight, then bias).
    pub grads: Vec<Tensor>,
}

/// One reproducible convolution problem (forward + backward), exercised
/// through [`Conv1d`]'s per-layer backend override so concurrently running
/// tests never race on process-global dispatch state.
#[derive(Clone, Copy, Debug)]
pub struct ConvSpec {
    /// Input channels.
    pub in_c: usize,
    /// Output channels.
    pub out_c: usize,
    /// Kernel taps.
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Dilation.
    pub dilation: usize,
    /// Padding policy.
    pub padding: Padding,
    /// Batch size.
    pub batch: usize,
    /// Input length.
    pub t_in: usize,
    /// Whether the layer has a bias.
    pub bias: bool,
    /// Seed for weights, input and upstream gradient.
    pub seed: u64,
}

impl ConvSpec {
    /// Runs forward + backward under `backend`, returning all outputs.
    pub fn run(&self, backend: ConvBackend) -> ConvOutputs {
        let mut r = rng(self.seed);
        let mut conv = Conv1d::with_options(
            &mut r,
            self.in_c,
            self.out_c,
            self.k,
            self.padding,
            self.stride,
            self.dilation,
            self.bias,
        );
        conv.set_backend(Some(backend));
        let x = randn_tensor(&mut r, &[self.batch, self.in_c, self.t_in], 1.0);
        let t_out = conv.out_len(self.t_in);
        let upstream = randn_tensor(&mut r, &[self.batch, self.out_c, t_out], 1.0);
        let y = conv.forward(&x, Mode::Train);
        conv.zero_grad();
        let dx = conv.backward(&upstream);
        let mut grads = Vec::new();
        conv.visit_params(&mut |p| grads.push(p.grad.clone()));
        ConvOutputs { y, dx, grads }
    }

    /// Asserts `backend` reproduces [`ConvBackend::Naive`] within `budget`
    /// ULP on the forward output and every gradient.
    pub fn check(&self, backend: ConvBackend, budget: u64) {
        let want = self.run(ConvBackend::Naive);
        let got = self.run(backend);
        let label = format!(
            "conv[{backend:?}] in={} out={} k={} s={} d={} pad={:?} b={} t={} bias={} seed={}",
            self.in_c,
            self.out_c,
            self.k,
            self.stride,
            self.dilation,
            self.padding,
            self.batch,
            self.t_in,
            self.bias,
            self.seed,
        );
        assert_within(&format!("{label} forward"), got.y.data(), want.y.data(), budget);
        assert_within(&format!("{label} dX"), got.dx.data(), want.dx.data(), budget);
        assert_eq!(got.grads.len(), want.grads.len());
        for (i, (g, w)) in got.grads.iter().zip(&want.grads).enumerate() {
            assert_within(&format!("{label} grad[{i}]"), g.data(), w.data(), budget);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        assert_eq!(ulp_distance(-1.0, f32::from_bits((-1.0f32).to_bits() + 1)), 1);
        // Straddling zero: distance is the sum of the two sides' offsets.
        let tiny_pos = f32::from_bits(1);
        let tiny_neg = -tiny_pos;
        assert_eq!(ulp_distance(tiny_pos, tiny_neg), 2);
        assert_eq!(ulp_distance(f32::NAN, 1.0), u64::MAX);
    }

    #[test]
    fn compare_finds_the_worst_element() {
        let want = [1.0f32, 2.0, 3.0];
        let got = [1.0f32, f32::from_bits(2.0f32.to_bits() + 3), 3.0];
        let report = compare(&got, &want);
        assert_eq!(report.max_ulp, 3);
        assert_eq!(report.worst.unwrap().0, 1);
    }

    #[test]
    fn gemm_spec_gemm_backend_is_bit_exact() {
        // The packed scalar kernel preserves the reference chain exactly on
        // every build (no SIMD involvement), so budget 0 applies always.
        for seed in 0..4 {
            let spec = GemmSpec {
                m: 7,
                n: 33,
                k: 19,
                a_layout: Layout::Normal,
                b_layout: Layout::Normal,
                accumulate: seed % 2 == 0,
                seed,
            };
            spec.check(Backend::Gemm, ULP_BUDGET_EXACT);
        }
    }

    #[test]
    fn conv_spec_gemm_backend_is_bit_exact() {
        let spec = ConvSpec {
            in_c: 3,
            out_c: 5,
            k: 5,
            stride: 1,
            dilation: 1,
            padding: Padding::Same,
            batch: 2,
            t_in: 30,
            bias: true,
            seed: 12,
        };
        spec.check(ConvBackend::Gemm, ULP_BUDGET_EXACT);
    }

    #[test]
    fn simd_backend_stays_within_the_documented_budget() {
        let spec = GemmSpec {
            m: 8,
            n: 128,
            k: 40,
            a_layout: Layout::Normal,
            b_layout: Layout::Normal,
            accumulate: false,
            seed: 99,
        };
        spec.check(Backend::Simd, ulp_budget());
    }
}
