//! Versioned binary serialization of layer state.
//!
//! The on-disk format (everything little-endian) is deliberately dumb so it
//! can be parsed from any language without a schema:
//!
//! ```text
//! magic    [8]  b"NILMTNSR"
//! version  u32  FORMAT_VERSION
//! count    u32  number of tensor records
//! record*  rank:u32, dims:[u32; rank], data:[f32; prod(dims)]
//! ```
//!
//! Records appear in [`crate::layer::Layer::visit_state`] order, which is
//! stable for a fixed architecture; loading shape-checks every record
//! against the live layer, so a checkpoint can never be applied to a
//! mismatched network. Byte-level building blocks ([`ByteWriter`] /
//! [`ByteReader`]) are public so higher-level checkpoint formats (the CamAL
//! ensemble checkpoint in the `camal` crate) can embed tensor-state blobs
//! inside their own headers.

use crate::tensor::Tensor;
use std::fmt;
use std::path::Path;

/// File magic of a serialized state blob.
pub const MAGIC: [u8; 8] = *b"NILMTNSR";

/// Current format version; bumped on any layout change.
pub const FORMAT_VERSION: u32 = 1;

/// Errors raised while writing or parsing serialized state.
#[derive(Debug)]
pub enum SerializeError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Structural error: bad magic, unsupported version, truncated data,
    /// trailing bytes or a shape mismatch. The string names the offence.
    Format(String),
}

impl fmt::Display for SerializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerializeError::Io(e) => write!(f, "i/o error: {e}"),
            SerializeError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for SerializeError {}

impl From<std::io::Error> for SerializeError {
    fn from(e: std::io::Error) -> Self {
        SerializeError::Io(e)
    }
}

/// Little-endian byte sink used by every writer in the format.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a whole `f32` slice little-endian, reserving once — the bulk
    /// path for tensor data (a multi-megabyte checkpoint must not regrow
    /// and recopy its buffer per element).
    pub fn put_f32s(&mut self, values: &[f32]) {
        self.buf.reserve(4 * values.len());
        for &v in values {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Overwrites the 4 bytes at `offset` with a little-endian `u32`
    /// (back-patching a count written before its value was known).
    pub fn patch_u32(&mut self, offset: usize, v: u32) {
        self.buf[offset..offset + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer and returns the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian cursor over a byte slice; every read is bounds-checked and
/// reports the offending byte offset on failure.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SerializeError> {
        // checked_add: `n` can come from a corrupt on-disk length field
        // near usize::MAX — wrapping would defeat the bounds check and
        // panic on the slice instead of returning an error.
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err(SerializeError::Format(format!(
                "truncated: needed {n} bytes for {what} at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        };
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, what: &str) -> Result<u8, SerializeError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self, what: &str) -> Result<u32, SerializeError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self, what: &str) -> Result<u64, SerializeError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a little-endian `f32`.
    pub fn get_f32(&mut self, what: &str) -> Result<f32, SerializeError> {
        let b = self.take(4, what)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], SerializeError> {
        self.take(n, what)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless the buffer was consumed exactly.
    pub fn expect_end(&self) -> Result<(), SerializeError> {
        if self.remaining() != 0 {
            return Err(SerializeError::Format(format!(
                "{} trailing bytes after offset {}",
                self.remaining(),
                self.pos
            )));
        }
        Ok(())
    }
}

/// Incremental writer for a tensor-state blob (used by
/// [`crate::layer::Layer::save_state`]).
pub struct StateWriter {
    w: ByteWriter,
    count: u32,
}

impl Default for StateWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl StateWriter {
    /// Starts a blob: magic, version and a count slot patched on `finish`.
    pub fn new() -> Self {
        let mut w = ByteWriter::new();
        w.put_bytes(&MAGIC);
        w.put_u32(FORMAT_VERSION);
        w.put_u32(0); // record count, patched in finish()
        StateWriter { w, count: 0 }
    }

    /// Appends one tensor record.
    pub fn push_tensor(&mut self, t: &Tensor) {
        self.w.reserve(4 * (1 + t.rank() + t.len()));
        self.w.put_u32(t.rank() as u32);
        for &d in t.shape() {
            self.w.put_u32(d as u32);
        }
        self.w.put_f32s(t.data());
        self.count += 1;
    }

    /// Finalizes the blob and returns its bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let count = self.count;
        self.w.patch_u32(MAGIC.len() + 4, count);
        self.w.finish()
    }
}

/// Parser for a tensor-state blob. Construction validates the header;
/// [`StateReader::read_all`] validates every record against the expected
/// shapes before returning any data.
pub struct StateReader<'a> {
    r: ByteReader<'a>,
    count: u32,
}

impl<'a> StateReader<'a> {
    /// Parses and validates the magic/version header.
    pub fn new(bytes: &'a [u8]) -> Result<Self, SerializeError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_bytes(MAGIC.len(), "magic")?;
        if magic != MAGIC {
            return Err(SerializeError::Format(format!(
                "bad magic {magic:02x?}, expected {MAGIC:02x?}"
            )));
        }
        let version = r.get_u32("version")?;
        if version != FORMAT_VERSION {
            return Err(SerializeError::Format(format!(
                "unsupported state format version {version}, expected {FORMAT_VERSION}"
            )));
        }
        let count = r.get_u32("record count")?;
        Ok(StateReader { r, count })
    }

    /// Reads every record, shape-checking each against `expected` (the
    /// shapes of the live layer in visit order). Errors on count mismatch,
    /// shape mismatch, truncation or trailing bytes.
    pub fn read_all(&mut self, expected: &[Vec<usize>]) -> Result<Vec<Vec<f32>>, SerializeError> {
        if self.count as usize != expected.len() {
            return Err(SerializeError::Format(format!(
                "state holds {} tensors, layer expects {}",
                self.count,
                expected.len()
            )));
        }
        let mut out = Vec::with_capacity(expected.len());
        for (i, want) in expected.iter().enumerate() {
            let rank = self.r.get_u32("tensor rank")? as usize;
            if rank != want.len() {
                return Err(SerializeError::Format(format!(
                    "tensor {i}: rank {rank} != expected {}",
                    want.len()
                )));
            }
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                dims.push(self.r.get_u32("tensor dim")? as usize);
            }
            if dims != *want {
                return Err(SerializeError::Format(format!(
                    "tensor {i}: shape {dims:?} != expected {want:?}"
                )));
            }
            let n: usize = dims.iter().product();
            let raw = self.r.get_bytes(4 * n, "tensor data")?;
            let mut data = Vec::with_capacity(n);
            for chunk in raw.chunks_exact(4) {
                data.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
            }
            out.push(data);
        }
        self.r.expect_end()?;
        Ok(out)
    }
}

/// Saves a layer's state blob to `path` (see [`crate::layer::Layer::save_state`]).
pub fn save_state_file(
    layer: &mut dyn crate::layer::Layer,
    path: impl AsRef<Path>,
) -> Result<(), SerializeError> {
    std::fs::write(path, layer.save_state())?;
    Ok(())
}

/// Loads a layer's state from a file written by [`save_state_file`].
pub fn load_state_file(
    layer: &mut dyn crate::layer::Layer,
    path: impl AsRef<Path>,
) -> Result<(), SerializeError> {
    let bytes = std::fs::read(path)?;
    layer.load_state(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{Conv1d, Padding};
    use crate::init::{randn_tensor, rng};
    use crate::layer::{Layer, Mode, Sequential};
    use crate::linear::Linear;
    use crate::norm::BatchNorm1d;

    fn toy_net(seed: u64) -> Sequential {
        let mut r = rng(seed);
        Sequential::new()
            .push(Conv1d::new(&mut r, 1, 3, 3, Padding::Same))
            .push(BatchNorm1d::new(3))
            .push(crate::activation::ReLU::default())
            .push(crate::pool::GlobalAvgPool1d::default())
            .push(Linear::new(&mut r, 3, 2))
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let mut r = rng(7);
        let x = randn_tensor(&mut r, &[4, 1, 16], 1.0);
        let mut a = toy_net(1);
        // Mutate batch-norm running stats so buffers are exercised too.
        for _ in 0..3 {
            let _ = a.forward(&x, Mode::Train);
        }
        let bytes = a.save_state();
        let mut b = toy_net(2); // different init, same architecture
        b.load_state(&bytes).expect("load must succeed");
        let ya = a.forward(&x, Mode::Eval);
        let yb = b.forward(&x, Mode::Eval);
        let bits = |t: &crate::tensor::Tensor| -> Vec<u32> {
            t.data().iter().map(|v| v.to_bits()).collect()
        };
        assert_eq!(bits(&ya), bits(&yb));
    }

    #[test]
    fn state_includes_batchnorm_buffers() {
        // gamma + beta + running mean + running var for BN, plus conv w/b
        // and linear w/b.
        let mut net = toy_net(3);
        let mut n = 0;
        net.visit_state(&mut |_| n += 1);
        assert_eq!(n, 2 + 4 + 2);
        let mut params = 0;
        net.visit_params(&mut |_| params += 1);
        assert!(n > params, "state must be a strict superset of params");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut net = toy_net(4);
        let mut bytes = net.save_state();
        bytes[0] ^= 0xFF;
        let err = net.load_state(&bytes).unwrap_err();
        assert!(format!("{err}").contains("magic"), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut net = toy_net(5);
        let mut bytes = net.save_state();
        bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&99u32.to_le_bytes());
        let err = net.load_state(&bytes).unwrap_err();
        assert!(format!("{err}").contains("version"), "{err}");
    }

    #[test]
    fn huge_corrupt_length_fields_error_instead_of_panicking() {
        let mut r = ByteReader::new(&[1, 2, 3, 4]);
        assert!(r.get_bytes(usize::MAX, "bomb").is_err());
        let mut r = ByteReader::new(&[1, 2, 3, 4]);
        let _ = r.get_u8("skip");
        assert!(r.get_bytes(usize::MAX - 2, "wrapping bomb").is_err());
    }

    #[test]
    fn truncated_and_trailing_are_rejected() {
        let mut net = toy_net(6);
        let bytes = net.save_state();
        let err = net.load_state(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(format!("{err}").contains("truncated"), "{err}");
        let mut extra = bytes.clone();
        extra.extend_from_slice(&[0, 1, 2]);
        let err = net.load_state(&extra).unwrap_err();
        assert!(format!("{err}").contains("trailing"), "{err}");
    }

    #[test]
    fn shape_mismatch_is_rejected_without_partial_apply() {
        let mut r = rng(8);
        let mut small = Sequential::new().push(Linear::new(&mut r, 2, 2));
        let bytes = small.save_state();
        let mut big = Sequential::new().push(Linear::new(&mut r, 3, 2));
        let before = big.save_state();
        assert!(big.load_state(&bytes).is_err());
        assert_eq!(before, big.save_state(), "failed load must not mutate the layer");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("nilm_tensor_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.bin");
        let mut a = toy_net(9);
        save_state_file(&mut a, &path).unwrap();
        let mut b = toy_net(10);
        load_state_file(&mut b, &path).unwrap();
        assert_eq!(a.save_state(), b.save_state());
        let _ = std::fs::remove_file(&path);
    }
}
