//! The [`Layer`] trait, trainable [`Param`]s and the [`Sequential`]
//! container.
//!
//! Every layer implements an explicit backward pass instead of relying on a
//! tape: the forward pass caches exactly what its backward needs, which keeps
//! allocations predictable and the hot loops easy to inspect. Correctness of
//! each backward pass is enforced by numerical-gradient tests (see
//! [`crate::gradcheck`]).

use crate::tensor::Tensor;

/// Whether a forward pass is part of training (dropout active, batch-norm
/// batch statistics), evaluation (deterministic), or inference
/// (deterministic *and* free of backward bookkeeping).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Training: stochastic layers are active, normalization uses batch stats.
    Train,
    /// Evaluation: deterministic forward with running statistics. Layers
    /// still cache what `backward` needs, so gradient checks can run
    /// eval-mode semantics.
    Eval,
    /// Inference: numerically identical to [`Mode::Eval`], but layers skip
    /// every cache that exists only for a subsequent `backward` call (input
    /// copies, activation masks, normalized-input buffers). Calling
    /// `backward` after an `Infer` forward is a contract violation and
    /// panics. This is the serving path's mode: the CamAL localization
    /// pipeline never differentiates, and at skinny inference shapes the
    /// cache traffic is comparable to the compute itself.
    Infer,
}

impl Mode {
    /// True when a forward pass in this mode must retain whatever the
    /// backward pass needs (everything except [`Mode::Infer`]).
    #[inline]
    pub fn caches_for_backward(self) -> bool {
        !matches!(self, Mode::Infer)
    }
}

/// A trainable parameter: the value plus its accumulated gradient.
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient of the loss with respect to `value`, accumulated by
    /// `backward` calls and cleared by [`Layer::zero_grad`].
    pub grad: Tensor,
}

impl Param {
    /// Wraps a value with a zeroed gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A differentiable module.
///
/// Contract: `backward` must be called with the gradient of the loss with
/// respect to the *output* of the immediately preceding `forward` call, and
/// returns the gradient with respect to that call's *input*. Parameter
/// gradients are accumulated (`+=`), so callers must `zero_grad` between
/// optimization steps.
pub trait Layer: Send {
    /// Runs the layer on `x`, caching whatever the backward pass needs.
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor;

    /// Propagates `grad` (d loss / d output) back to the input, accumulating
    /// parameter gradients along the way.
    fn backward(&mut self, grad: &Tensor) -> Tensor;

    /// Visits every trainable parameter in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        let _ = f;
    }

    /// Visits every *state* tensor in a stable order: trainable parameter
    /// values plus persistent non-trainable buffers (batch-norm running
    /// statistics). This is the traversal behind [`Layer::save_state`] /
    /// [`Layer::load_state`], so together the visited tensors must fully
    /// determine the layer's `Mode::Eval` forward pass.
    ///
    /// The default visits parameter values only. Layers that carry extra
    /// buffers (e.g. `BatchNorm1d`) and containers that hold child layers
    /// (e.g. `Sequential`) must override it — a container that merely
    /// inherits the default would reach children through `visit_params` and
    /// silently skip their buffers.
    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.visit_params(&mut |p| f(&mut p.value));
    }

    /// Serializes the full evaluation state ([`Layer::visit_state`] order)
    /// into the versioned binary format of [`crate::serialize`].
    fn save_state(&mut self) -> Vec<u8> {
        let mut writer = crate::serialize::StateWriter::new();
        self.visit_state(&mut |t| writer.push_tensor(t));
        writer.finish()
    }

    /// Restores state previously produced by [`Layer::save_state`]. The
    /// layer must have the exact same architecture: every tensor is
    /// shape-checked against the visit order and any mismatch (as well as a
    /// bad magic/version header or a truncated/oversized payload) is
    /// rejected without partially applying the file.
    fn load_state(&mut self, bytes: &[u8]) -> Result<(), crate::serialize::SerializeError> {
        let mut reader = crate::serialize::StateReader::new(bytes)?;
        // Two-phase: validate every record against the expected shapes
        // first, then commit, so a corrupt tail cannot leave the layer
        // half-loaded.
        let mut shapes: Vec<Vec<usize>> = Vec::new();
        self.visit_state(&mut |t| shapes.push(t.shape().to_vec()));
        let tensors = reader.read_all(&shapes)?;
        let mut next = tensors.into_iter();
        self.visit_state(&mut |t| {
            let src = next.next().expect("visit_state order changed between passes");
            t.data_mut().copy_from_slice(&src);
        });
        Ok(())
    }

    /// Clears accumulated gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.grad.fill(0.0));
    }

    /// Total number of trainable scalars.
    fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }
}

/// Runs layers in order; the workhorse container for feed-forward stacks.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// An empty container.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer in place.
    pub fn add(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers held.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when no layers are held.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut layers = self.layers.iter_mut();
        let mut cur = match layers.next() {
            Some(first) => first.forward(x, mode),
            None => x.clone(),
        };
        for layer in layers {
            cur = layer.forward(&cur, mode);
        }
        cur
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut layers = self.layers.iter_mut().rev();
        let mut cur = match layers.next() {
            Some(last) => last.backward(grad),
            None => grad.clone(),
        };
        for layer in layers {
            cur = layer.backward(&cur);
        }
        cur
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_state(f);
        }
    }
}

/// The identity layer; useful as a placeholder branch in residual blocks.
#[derive(Default)]
pub struct Identity;

impl Layer for Identity {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        x.clone()
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        grad.clone()
    }
}

/// `main + shortcut` residual composition: `y = main(x) + shortcut(x)`.
///
/// The shortcut is the identity when `shortcut` is `None`; otherwise it is a
/// projection (1x1 conv + norm in ResNet when channel counts change).
pub struct Residual {
    main: Box<dyn Layer>,
    shortcut: Option<Box<dyn Layer>>,
}

impl Residual {
    /// A residual block with an identity shortcut.
    pub fn new(main: impl Layer + 'static) -> Self {
        Residual { main: Box::new(main), shortcut: None }
    }

    /// A residual block with a projection shortcut.
    pub fn with_shortcut(main: impl Layer + 'static, shortcut: impl Layer + 'static) -> Self {
        Residual { main: Box::new(main), shortcut: Some(Box::new(shortcut)) }
    }
}

impl Layer for Residual {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut main = self.main.forward(x, mode);
        match &mut self.shortcut {
            Some(s) => main.add_assign(&s.forward(x, mode)),
            None => main.add_assign(x),
        }
        main
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut gx = self.main.backward(grad);
        let side = match &mut self.shortcut {
            Some(s) => s.backward(grad),
            None => grad.clone(),
        };
        gx.add_assign(&side);
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.main.visit_params(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_params(f);
        }
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.main.visit_state(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_state(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::ReLU;

    #[test]
    fn identity_roundtrips() {
        let mut id = Identity;
        let x = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        assert_eq!(id.forward(&x, Mode::Eval), x);
        assert_eq!(id.backward(&x), x);
    }

    #[test]
    fn sequential_composes_in_order() {
        let mut seq = Sequential::new().push(ReLU::default()).push(Identity);
        let x = Tensor::from_slice(&[-1.0, 2.0]);
        let y = seq.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[0.0, 2.0]);
        let g = seq.backward(&Tensor::from_slice(&[1.0, 1.0]));
        assert_eq!(g.data(), &[0.0, 1.0]);
    }

    #[test]
    fn residual_identity_doubles_signal() {
        let mut res = Residual::new(Identity);
        let x = Tensor::from_slice(&[1.0, 2.0]);
        let y = res.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[2.0, 4.0]);
        let g = res.backward(&Tensor::from_slice(&[1.0, 1.0]));
        assert_eq!(g.data(), &[2.0, 2.0]);
    }

    #[test]
    fn param_counts_accumulate() {
        let mut seq = Sequential::new().push(Identity).push(Identity);
        assert_eq!(seq.num_params(), 0);
    }
}
