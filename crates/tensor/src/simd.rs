//! Explicit `std::arch` SIMD microkernels for the inference hot path.
//!
//! Two kernels live here, both consumers of the same data the portable GEMM
//! in [`crate::gemm`] operates on:
//!
//! - [`packed_microkernel`] — a drop-in replacement for the scalar
//!   `MR × NR` register-tile microkernel, operating on the same packed
//!   `A`/`B` panels (AVX2+FMA: 4 rows × 2 `ymm` accumulators; NEON: 4 rows
//!   × 4 `q` accumulators).
//! - [`skinny_gemm`] — a no-packing specialization for `M ≤`
//!   [`SKINNY_MAX_M`] row-major products, the shape small-batch inference
//!   emits (a bench-width detector's conv layers are `m ∈ {4, 8}` GEMMs
//!   where panel packing costs more than it saves). `A` rows stay
//!   register-resident as broadcasts; `B` rows stream contiguously through
//!   FMA lanes in 16-column strips, six output rows at a time.
//!
//! ## Feature detection and exactness
//!
//! [`simd_available`] gates every entry point: AVX2+FMA detected at runtime
//! on x86-64, NEON (baseline) on aarch64, `false` elsewhere, and `false`
//! everywhere when `NILM_SIMD=off` — that environment override is how CI
//! exercises the portable-scalar fallback on machines that do have the ISA.
//! When unavailable, every kernel falls back to scalar code with the exact
//! per-element accumulation chain of the portable path, so forcing
//! `Backend::Simd` is always safe, never wrong, merely not faster.
//!
//! Every kernel preserves the crate's left-to-right `k`-chain contract (see
//! [`crate::gemm`]): lane `j` of an accumulator register carries exactly the
//! chain `((c0 + t_0) + t_1) + …` that the scalar kernel computes for that
//! output element. Whether the *results* are bit-identical therefore only
//! depends on whether each multiply-add step contracts to a fused operation
//! on both paths:
//!
//! - the SIMD step is always fused (`vfmadd231ps` / `fmla`);
//! - the scalar step ([`crate::gemm::fmadd`]) is fused exactly when the
//!   crate is compiled with the `fma` target feature (x86-64; the default
//!   `.cargo/config.toml` builds with `target-cpu=native`, so any machine
//!   whose CPU has FMA gets it) or NEON (aarch64 baseline).
//!
//! [`simd_exact`] reports that condition. When it is `false` (e.g. a
//! portable x86-64 build without `-C target-feature=+fma` running on an
//! AVX2 machine), SIMD results differ from scalar by one rounding per
//! multiply-add — a few ULP over these inner dimensions; the oracle suite
//! bounds it at [`crate::oracle::ULP_BUDGET_FMA`] — and the autotuner
//! excludes the SIMD backend from automatic selection so that untuned runs
//! stay bit-deterministic. Forcing `NILM_BACKEND=simd` remains allowed.

use crate::gemm::{fmadd, MR, NR};
use std::sync::OnceLock;

/// Maximum `m` (output rows) handled by [`skinny_gemm`]; taller products go
/// through the packed path, where panel reuse wins.
pub const SKINNY_MAX_M: usize = 16;

/// Rows processed per strip pass of the skinny kernel: 6 rows × 2 lanes of
/// accumulators + 2 `B` loads + 1 broadcast = 15 of 16 `ymm` registers.
const SKINNY_RB: usize = 6;

/// Whether the explicit SIMD kernels are usable on this machine: requires
/// AVX2+FMA (x86-64, runtime-detected) or NEON (aarch64 baseline), and not
/// having been disabled via `NILM_SIMD=off|0|false` (read once).
pub fn simd_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        if matches!(
            std::env::var("NILM_SIMD").ok().as_deref(),
            Some("off") | Some("0") | Some("false")
        ) {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
        }
        #[cfg(target_arch = "aarch64")]
        {
            true
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            false
        }
    })
}

/// Whether the SIMD backend produces **bit-identical** results to the
/// scalar path. True when SIMD is unavailable (the fallback *is* the scalar
/// path) or when the scalar path's multiply-adds are themselves fused (see
/// the module docs). When false, SIMD is excluded from autotuned selection
/// and the oracle tests compare within a ULP budget instead of exactly.
pub fn simd_exact() -> bool {
    if !simd_available() {
        return true;
    }
    cfg!(any(target_feature = "fma", all(target_arch = "aarch64", target_feature = "neon")))
}

// ---- skinny GEMM --------------------------------------------------------

/// `C = A · B` (or `C += A · B` when `accumulate`) for row-major operands
/// with `m ≤` [`SKINNY_MAX_M`], without packing: `A` is `[m, k]`, `B` is
/// `[k, n]`, `C` is `[m, n]`. Falls back to an identical-chain scalar loop
/// when SIMD is unavailable.
pub fn skinny_gemm(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
) {
    debug_assert_eq!(b.len(), k * n);
    let rows: Vec<&[f32]> =
        if n == 0 { (0..k).map(|_| &b[0..0]).collect() } else { b.chunks_exact(n).collect() };
    skinny_gemm_rows(m, n, k, a, &rows, c, accumulate);
}

/// [`skinny_gemm`] with the `B` operand given as `k` independent row slices
/// (each at least `n` long) instead of one contiguous `[k, n]` matrix.
///
/// This is the kernel behind the direct (im2col-free) convolution path: a
/// stride-1 convolution's lowered `B` rows are plain shifted windows of a
/// zero-padded input, so handing the kernel those windows as slices skips
/// materializing the column matrix entirely. The per-element accumulation
/// chain is row order, left to right — identical to the contiguous form.
pub fn skinny_gemm_rows(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    rows: &[&[f32]],
    c: &mut [f32],
    accumulate: bool,
) {
    debug_assert!(m <= SKINNY_MAX_M);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(rows.len(), k);
    debug_assert!(rows.iter().all(|r| r.len() >= n));
    debug_assert_eq!(c.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    if simd_available() {
        // Safety: simd_available() verified avx2+fma at runtime.
        unsafe { skinny_avx2(m, n, k, a, rows, c, accumulate) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    if simd_available() {
        // Safety: NEON is an aarch64 baseline feature.
        unsafe { skinny_neon(m, n, k, a, rows, c, accumulate) };
        return;
    }
    skinny_scalar(m, n, k, a, rows, c, accumulate);
}

/// Portable fallback with the reference accumulation chain (`i`, then `p`,
/// then `j` — each output element sees its k-terms left to right).
fn skinny_scalar(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    rows: &[&[f32]],
    c: &mut [f32],
    accumulate: bool,
) {
    for i in 0..m {
        let crow = &mut c[i * n..(i + 1) * n];
        if !accumulate {
            crow.iter_mut().for_each(|v| *v = 0.0);
        }
        for p in 0..k {
            let av = a[i * k + p];
            let brow = &rows[p][..n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv = fmadd(av, bv, *cv);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn skinny_avx2(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    rows: &[&[f32]],
    c: &mut [f32],
    accumulate: bool,
) {
    let mut i = 0;
    while i < m {
        let rb = (m - i).min(SKINNY_RB);
        let ab = &a[i * k..(i + rb) * k];
        let cb = &mut c[i * n..(i + rb) * n];
        match rb {
            6 => skinny_rows_avx2::<6>(n, k, ab, rows, cb, accumulate),
            5 => skinny_rows_avx2::<5>(n, k, ab, rows, cb, accumulate),
            4 => skinny_rows_avx2::<4>(n, k, ab, rows, cb, accumulate),
            3 => skinny_rows_avx2::<3>(n, k, ab, rows, cb, accumulate),
            2 => skinny_rows_avx2::<2>(n, k, ab, rows, cb, accumulate),
            _ => skinny_rows_avx2::<1>(n, k, ab, rows, cb, accumulate),
        }
        i += rb;
    }
}

/// `RB` rows of the skinny product: each `B` row element is loaded once per
/// 16-column strip and fused against `RB` broadcast `A` scalars, so `B`
/// bandwidth is amortized `RB`-fold. Accumulators never leave registers
/// across the whole `k` loop.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn skinny_rows_avx2<const RB: usize>(
    n: usize,
    k: usize,
    a: &[f32],       // [RB, k]
    rows: &[&[f32]], // k rows, each at least n long
    c: &mut [f32],   // [RB, n]
    accumulate: bool,
) {
    use std::arch::x86_64::*;
    let mut j = 0;
    // 16-column strips: 2 ymm accumulators per row.
    while j + 2 * 8 <= n {
        let mut acc = [[_mm256_setzero_ps(); 2]; RB];
        if accumulate {
            for r in 0..RB {
                let base = c.as_ptr().add(r * n + j);
                acc[r][0] = _mm256_loadu_ps(base);
                acc[r][1] = _mm256_loadu_ps(base.add(8));
            }
        }
        for p in 0..k {
            let bp = rows.get_unchecked(p).as_ptr().add(j);
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            for r in 0..RB {
                let av = _mm256_set1_ps(*a.get_unchecked(r * k + p));
                acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
                acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
            }
        }
        for r in 0..RB {
            let base = c.as_mut_ptr().add(r * n + j);
            _mm256_storeu_ps(base, acc[r][0]);
            _mm256_storeu_ps(base.add(8), acc[r][1]);
        }
        j += 2 * 8;
    }
    // One 8-column strip.
    if j + 8 <= n {
        let mut acc = [_mm256_setzero_ps(); RB];
        if accumulate {
            for r in 0..RB {
                acc[r] = _mm256_loadu_ps(c.as_ptr().add(r * n + j));
            }
        }
        for p in 0..k {
            let b0 = _mm256_loadu_ps(rows.get_unchecked(p).as_ptr().add(j));
            for r in 0..RB {
                let av = _mm256_set1_ps(*a.get_unchecked(r * k + p));
                acc[r] = _mm256_fmadd_ps(av, b0, acc[r]);
            }
        }
        for r in 0..RB {
            _mm256_storeu_ps(c.as_mut_ptr().add(r * n + j), acc[r]);
        }
        j += 8;
    }
    // Scalar tail: `mul_add` contracts to a fused op here (the enclosing
    // function is compiled with `fma`), matching the vector lanes' chains.
    for jj in j..n {
        for r in 0..RB {
            let mut s = if accumulate { c[r * n + jj] } else { 0.0 };
            for p in 0..k {
                s = a[r * k + p].mul_add(rows[p][jj], s);
            }
            c[r * n + jj] = s;
        }
    }
}

#[cfg(target_arch = "aarch64")]
unsafe fn skinny_neon(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    rows: &[&[f32]],
    c: &mut [f32],
    accumulate: bool,
) {
    let mut i = 0;
    while i < m {
        let rb = (m - i).min(SKINNY_RB);
        let ab = &a[i * k..(i + rb) * k];
        let cb = &mut c[i * n..(i + rb) * n];
        match rb {
            6 => skinny_rows_neon::<6>(n, k, ab, rows, cb, accumulate),
            5 => skinny_rows_neon::<5>(n, k, ab, rows, cb, accumulate),
            4 => skinny_rows_neon::<4>(n, k, ab, rows, cb, accumulate),
            3 => skinny_rows_neon::<3>(n, k, ab, rows, cb, accumulate),
            2 => skinny_rows_neon::<2>(n, k, ab, rows, cb, accumulate),
            _ => skinny_rows_neon::<1>(n, k, ab, rows, cb, accumulate),
        }
        i += rb;
    }
}

#[cfg(target_arch = "aarch64")]
unsafe fn skinny_rows_neon<const RB: usize>(
    n: usize,
    k: usize,
    a: &[f32],       // [RB, k]
    rows: &[&[f32]], // k rows, each at least n long
    c: &mut [f32],   // [RB, n]
    accumulate: bool,
) {
    use std::arch::aarch64::*;
    let mut j = 0;
    // 8-column strips: 2 q accumulators per row (RB=6 → 12 of 32 v-regs).
    while j + 2 * 4 <= n {
        let mut acc = [[vdupq_n_f32(0.0); 2]; RB];
        if accumulate {
            for r in 0..RB {
                let base = c.as_ptr().add(r * n + j);
                acc[r][0] = vld1q_f32(base);
                acc[r][1] = vld1q_f32(base.add(4));
            }
        }
        for p in 0..k {
            let bp = rows.get_unchecked(p).as_ptr().add(j);
            let b0 = vld1q_f32(bp);
            let b1 = vld1q_f32(bp.add(4));
            for r in 0..RB {
                let av = *a.get_unchecked(r * k + p);
                acc[r][0] = vfmaq_n_f32(acc[r][0], b0, av);
                acc[r][1] = vfmaq_n_f32(acc[r][1], b1, av);
            }
        }
        for r in 0..RB {
            let base = c.as_mut_ptr().add(r * n + j);
            vst1q_f32(base, acc[r][0]);
            vst1q_f32(base.add(4), acc[r][1]);
        }
        j += 2 * 4;
    }
    if j + 4 <= n {
        let mut acc = [vdupq_n_f32(0.0); RB];
        if accumulate {
            for r in 0..RB {
                acc[r] = vld1q_f32(c.as_ptr().add(r * n + j));
            }
        }
        for p in 0..k {
            let b0 = vld1q_f32(rows.get_unchecked(p).as_ptr().add(j));
            for r in 0..RB {
                acc[r] = vfmaq_n_f32(acc[r], b0, *a.get_unchecked(r * k + p));
            }
        }
        for r in 0..RB {
            vst1q_f32(c.as_mut_ptr().add(r * n + j), acc[r]);
        }
        j += 4;
    }
    for jj in j..n {
        for r in 0..RB {
            let mut s = if accumulate { c[r * n + jj] } else { 0.0 };
            for p in 0..k {
                // NEON scalar fmadd: fused on aarch64 (mul_add → fmadd).
                s = a[r * k + p].mul_add(rows[p][jj], s);
            }
            c[r * n + jj] = s;
        }
    }
}

// ---- packed microkernel --------------------------------------------------

/// SIMD twin of the scalar `MR × NR` microkernel in [`crate::gemm`]: same
/// packed-panel inputs, same `first` semantics, same per-lane accumulation
/// chain. Falls back to the scalar microkernel when SIMD is unavailable.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn packed_microkernel(
    kc: usize,
    apanel: &[f32],
    bpanel: &[f32],
    c: &mut [f32],
    row: usize,
    col: usize,
    ldc: usize,
    mr: usize,
    nr: usize,
    first: bool,
) {
    #[cfg(target_arch = "x86_64")]
    if simd_available() {
        // Safety: simd_available() verified avx2+fma at runtime.
        unsafe { packed_microkernel_avx2(kc, apanel, bpanel, c, row, col, ldc, mr, nr, first) };
        return;
    }
    #[cfg(target_arch = "aarch64")]
    if simd_available() {
        // Safety: NEON is an aarch64 baseline feature.
        unsafe { packed_microkernel_neon(kc, apanel, bpanel, c, row, col, ldc, mr, nr, first) };
        return;
    }
    crate::gemm::scalar_microkernel(kc, apanel, bpanel, c, row, col, ldc, mr, nr, first);
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn packed_microkernel_avx2(
    kc: usize,
    apanel: &[f32],
    bpanel: &[f32],
    c: &mut [f32],
    row: usize,
    col: usize,
    ldc: usize,
    mr: usize,
    nr: usize,
    first: bool,
) {
    use std::arch::x86_64::*;
    // MR = 4 rows × 2 ymm (NR = 16 lanes) of accumulators; panels are
    // zero-padded to full tiles, so lanes past `nr` compute pure-zero chains
    // that are simply not stored back.
    let mut acc = [[_mm256_setzero_ps(); 2]; MR];
    if !first {
        for i in 0..mr {
            let crow = &c[(row + i) * ldc + col..];
            if nr == NR {
                acc[i][0] = _mm256_loadu_ps(crow.as_ptr());
                acc[i][1] = _mm256_loadu_ps(crow.as_ptr().add(8));
            } else {
                let mut tmp = [0.0f32; NR];
                tmp[..nr].copy_from_slice(&crow[..nr]);
                acc[i][0] = _mm256_loadu_ps(tmp.as_ptr());
                acc[i][1] = _mm256_loadu_ps(tmp.as_ptr().add(8));
            }
        }
    }
    for (ap, bp) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)).take(kc) {
        let b0 = _mm256_loadu_ps(bp.as_ptr());
        let b1 = _mm256_loadu_ps(bp.as_ptr().add(8));
        for i in 0..MR {
            let av = _mm256_set1_ps(ap[i]);
            acc[i][0] = _mm256_fmadd_ps(av, b0, acc[i][0]);
            acc[i][1] = _mm256_fmadd_ps(av, b1, acc[i][1]);
        }
    }
    for i in 0..mr {
        let crow = &mut c[(row + i) * ldc + col..];
        if nr == NR {
            _mm256_storeu_ps(crow.as_mut_ptr(), acc[i][0]);
            _mm256_storeu_ps(crow.as_mut_ptr().add(8), acc[i][1]);
        } else {
            let mut tmp = [0.0f32; NR];
            _mm256_storeu_ps(tmp.as_mut_ptr(), acc[i][0]);
            _mm256_storeu_ps(tmp.as_mut_ptr().add(8), acc[i][1]);
            crow[..nr].copy_from_slice(&tmp[..nr]);
        }
    }
}

#[cfg(target_arch = "aarch64")]
#[allow(clippy::too_many_arguments)]
unsafe fn packed_microkernel_neon(
    kc: usize,
    apanel: &[f32],
    bpanel: &[f32],
    c: &mut [f32],
    row: usize,
    col: usize,
    ldc: usize,
    mr: usize,
    nr: usize,
    first: bool,
) {
    use std::arch::aarch64::*;
    // MR = 4 rows × 4 q (NR = 16 lanes) of accumulators = 16 of 32 v-regs.
    let mut acc = [[vdupq_n_f32(0.0); 4]; MR];
    if !first {
        for i in 0..mr {
            let crow = &c[(row + i) * ldc + col..];
            if nr == NR {
                for l in 0..4 {
                    acc[i][l] = vld1q_f32(crow.as_ptr().add(l * 4));
                }
            } else {
                let mut tmp = [0.0f32; NR];
                tmp[..nr].copy_from_slice(&crow[..nr]);
                for l in 0..4 {
                    acc[i][l] = vld1q_f32(tmp.as_ptr().add(l * 4));
                }
            }
        }
    }
    for (ap, bp) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)).take(kc) {
        let b = [
            vld1q_f32(bp.as_ptr()),
            vld1q_f32(bp.as_ptr().add(4)),
            vld1q_f32(bp.as_ptr().add(8)),
            vld1q_f32(bp.as_ptr().add(12)),
        ];
        for i in 0..MR {
            let av = ap[i];
            for l in 0..4 {
                acc[i][l] = vfmaq_n_f32(acc[i][l], b[l], av);
            }
        }
    }
    for i in 0..mr {
        let crow = &mut c[(row + i) * ldc + col..];
        if nr == NR {
            for l in 0..4 {
                vst1q_f32(crow.as_mut_ptr().add(l * 4), acc[i][l]);
            }
        } else {
            let mut tmp = [0.0f32; NR];
            for l in 0..4 {
                vst1q_f32(tmp.as_mut_ptr().add(l * 4), acc[i][l]);
            }
            crow[..nr].copy_from_slice(&tmp[..nr]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Triple-loop reference with the crate's left-to-right k chain.
    fn reference(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c0: &[f32]) -> Vec<f32> {
        let mut c = c0.to_vec();
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                for j in 0..n {
                    c[i * n + j] = fmadd(av, b[p * n + j], c[i * n + j]);
                }
            }
        }
        c
    }

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        let mut state = seed as u64 * 2654435761 + 99;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn skinny_matches_reference_across_shapes_and_tails() {
        // n values hit the 16-strip, 8-strip and scalar-tail paths; m values
        // hit every row-block residue.
        for &m in &[1usize, 2, 3, 5, 6, 7, 11, 16] {
            for &n in &[1usize, 7, 8, 15, 16, 17, 24, 33, 100] {
                for &k in &[1usize, 2, 5, 13, 40] {
                    let a = fill(m * k, 1);
                    let b = fill(k * n, 2);
                    let mut c = vec![0.0f32; m * n];
                    skinny_gemm(m, n, k, &a, &b, &mut c, false);
                    let want = reference(m, n, k, &a, &b, &vec![0.0; m * n]);
                    if simd_exact() {
                        assert_eq!(c, want, "shape ({m},{n},{k})");
                    } else {
                        for (x, y) in c.iter().zip(&want) {
                            assert!((x - y).abs() <= 1e-4, "shape ({m},{n},{k})");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn skinny_rows_matches_contiguous_on_overlapping_windows() {
        // The direct-convolution usage: B rows are k overlapping windows of
        // one longer buffer (shift 1, conv-style), not a packed matrix.
        // Materializing the same windows contiguously must give bit-equal
        // output — the row form is the same kernel with indirect row bases.
        for &(m, n, k) in &[(4usize, 128usize, 40usize), (6, 33, 9), (16, 17, 5), (1, 1, 1)] {
            let buf = fill(n + k - 1, 7);
            let rows: Vec<&[f32]> = (0..k).map(|p| &buf[p..p + n]).collect();
            let packed: Vec<f32> = rows.iter().flat_map(|r| r.iter().copied()).collect();
            let a = fill(m * k, 8);
            let mut c_rows = vec![0.0f32; m * n];
            let mut c_packed = vec![0.0f32; m * n];
            skinny_gemm_rows(m, n, k, &a, &rows, &mut c_rows, false);
            skinny_gemm(m, n, k, &a, &packed, &mut c_packed, false);
            assert_eq!(c_rows, c_packed, "shape ({m},{n},{k})");
        }
    }

    #[test]
    fn skinny_accumulate_adds_onto_existing_c() {
        let (m, n, k) = (6, 33, 9);
        let a = fill(m * k, 3);
        let b = fill(k * n, 4);
        let base = fill(m * n, 5);
        let mut c = base.clone();
        skinny_gemm(m, n, k, &a, &b, &mut c, true);
        let want = reference(m, n, k, &a, &b, &base);
        if simd_exact() {
            assert_eq!(c, want);
        } else {
            for (x, y) in c.iter().zip(&want) {
                assert!((x - y).abs() <= 1e-4);
            }
        }
    }

    #[test]
    fn skinny_scalar_fallback_is_bit_exact_vs_reference() {
        // The fallback must preserve the chain regardless of ISA.
        let (m, n, k) = (5, 19, 12);
        let a = fill(m * k, 6);
        let b = fill(k * n, 7);
        let rows: Vec<&[f32]> = b.chunks_exact(n).collect();
        let mut c = vec![0.0f32; m * n];
        skinny_scalar(m, n, k, &a, &rows, &mut c, false);
        assert_eq!(c, reference(m, n, k, &a, &b, &vec![0.0; m * n]));
    }
}
