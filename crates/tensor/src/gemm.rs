//! Cache-blocked, register-tiled `f32` GEMM — the single compute kernel
//! behind [`crate::tensor::Tensor::matmul`], [`crate::linear::Linear`] and
//! the im2col-lowered [`crate::conv::Conv1d`].
//!
//! The design follows the classic BLIS/GotoBLAS decomposition:
//!
//! - the operand matrices are tiled into `MC × KC` blocks of `A` and
//!   `KC × NC` blocks of `B`;
//! - each block is repacked into contiguous micro-panels (`MR`-row panels of
//!   `A`, `NR`-column panels of `B`) so the inner kernel streams over
//!   contiguous, cache-resident memory;
//! - an `MR × NR` register-tile microkernel accumulates
//!   `C[i, j] += A[i, p] * B[p, j]` with the `p` loop innermost-sequential,
//!   which LLVM auto-vectorizes across the `NR` lanes.
//!
//! Row-blocks of `C` are independent, so large multiplies are parallelized
//! over `MC`-row blocks through the (scoped-thread) `rayon` stand-in.
//!
//! ## Exactness contract
//!
//! Every output element is the strict left-to-right sum
//! `((c0 + t_0) + t_1) + ... + t_{k-1}` over the inner dimension: the
//! microkernel loads the current `C` tile into its accumulators at the start
//! of every `KC` step and adds the `k`-terms one at a time, and row/column
//! blocking never reorders the `k` chain. Naive triple-loop code with the
//! same per-element chain therefore produces **bit-identical** results —
//! this is what lets the property tests in `tests/conv_gemm_equivalence.rs`
//! assert exact equality between the GEMM-lowered convolution and the
//! shifted-axpy reference path.

use crate::dispatch::Backend;
use rayon::prelude::*;

/// Fused (or fused-style) multiply-add: compiles to a single FMA
/// instruction when the target has one, and to separate multiply + add
/// otherwise (where `mul_add` would fall back to a slow libm call).
///
/// Both convolution backends route every multiply-accumulate through this
/// helper, so their arithmetic is the same instruction sequence under
/// either compilation mode and the bit-exactness contract holds regardless
/// of the target ISA.
#[inline(always)]
pub fn fmadd(a: f32, b: f32, c: f32) -> f32 {
    #[cfg(any(target_feature = "fma", all(target_arch = "aarch64", target_feature = "neon")))]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(any(
        target_feature = "fma",
        all(target_arch = "aarch64", target_feature = "neon")
    )))]
    {
        a * b + c
    }
}

/// Which inner kernel a GEMM runs: the portable scalar microkernel or the
/// explicit `std::arch` SIMD kernels in [`crate::simd`] (which also enable
/// the no-packing skinny fast path for `m ≤ simd::SKINNY_MAX_M`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelMode {
    /// Portable microkernel (auto-vectorized by the compiler).
    Scalar,
    /// Explicit AVX2/FMA or NEON microkernels + skinny specialization.
    Simd,
}

/// Maps a dispatch-layer backend choice to a kernel mode. `None` (= no
/// forced backend) uses SIMD only when it is available **and** bit-identical
/// to the scalar chain ([`crate::simd::simd_exact`]), so un-forced runs are
/// always deterministic. Forcing [`Backend::Simd`] opts into the SIMD
/// kernels whenever the ISA is there, exact or not.
pub fn kernel_mode_for(backend: Option<Backend>) -> KernelMode {
    match backend {
        Some(Backend::Simd) => {
            if crate::simd::simd_available() {
                KernelMode::Simd
            } else {
                KernelMode::Scalar
            }
        }
        Some(_) => KernelMode::Scalar,
        None => {
            if crate::simd::simd_available() && crate::simd::simd_exact() {
                KernelMode::Simd
            } else {
                KernelMode::Scalar
            }
        }
    }
}

/// Rows of the register microtile.
pub const MR: usize = 4;
/// Columns of the register microtile (two AVX2 lanes / one AVX-512 lane per
/// accumulator row; measured fastest on both baseline x86-64 and
/// `target-cpu=native` builds).
pub const NR: usize = 16;
/// Row-block size: `MC × KC` panel of `A` stays L2-resident.
pub const MC: usize = 64;
/// Inner-dimension block size.
pub const KC: usize = 512;
/// Column-block size: `KC × NC` panel of `B` stays L2/L3-resident.
pub const NC: usize = 512;

/// Minimum multiply-accumulate count before a `gemm` call fans out over
/// row-blocks (below this, scoped-thread spawn overhead dominates).
const PAR_MACS: usize = 1 << 21;

// A row block must cover a whole number of `MR` panels so a block's packed
// A is one contiguous run.
const _: () = assert!(MC % MR == 0);

/// How an operand slice is laid out relative to the logical GEMM operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layout {
    /// The slice is the operand itself, row-major.
    Normal,
    /// The slice is the *transpose* of the operand, row-major (i.e. the
    /// logical `[r, c]` element lives at `slice[c * rows + r]`).
    Transposed,
}

/// `C = A · B` (or `C += A · B` when `accumulate`), with `A` logically
/// `[m, k]`, `B` logically `[k, n]`, and `C` `[m, n]` row-major.
///
/// `a_layout`/`b_layout` describe how the slices store the logical
/// operands, so `A^T · B`, `A · B^T` and `A^T · B^T` products never
/// materialize a transposed copy. Parallelizes over row-blocks when the
/// problem is large enough and more than one worker thread is configured.
pub fn gemm(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    c: &mut [f32],
    accumulate: bool,
) {
    gemm_mode(m, n, k, a, a_layout, b, b_layout, c, accumulate, default_mode())
}

/// [`gemm`] forced sequential — used by callers that already parallelize at
/// a coarser grain (e.g. the batch axis of a convolution).
#[allow(clippy::too_many_arguments)]
pub fn gemm_seq(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    c: &mut [f32],
    accumulate: bool,
) {
    gemm_seq_mode(m, n, k, a, a_layout, b, b_layout, c, accumulate, default_mode())
}

/// Kernel mode for callers that don't specify one: honors the process-wide
/// forced backend (`NILM_BACKEND` / `set_forced_backend`).
fn default_mode() -> KernelMode {
    kernel_mode_for(crate::dispatch::forced_backend())
}

/// [`gemm`] with an explicit inner-kernel mode (the conv dispatcher passes
/// the autotuned winner's mode here).
#[allow(clippy::too_many_arguments)]
pub fn gemm_mode(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    c: &mut [f32],
    accumulate: bool,
    mode: KernelMode,
) {
    let parallel = m * n * k >= PAR_MACS && rayon::current_num_threads() > 1 && m > MC;
    gemm_with(m, n, k, a, a_layout, b, b_layout, c, accumulate, parallel, mode)
}

/// [`gemm_seq`] with an explicit inner-kernel mode.
#[allow(clippy::too_many_arguments)]
pub fn gemm_seq_mode(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    c: &mut [f32],
    accumulate: bool,
    mode: KernelMode,
) {
    gemm_with(m, n, k, a, a_layout, b, b_layout, c, accumulate, false, mode)
}

#[allow(clippy::too_many_arguments)]
fn gemm_with(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    c: &mut [f32],
    accumulate: bool,
    parallel: bool,
    mode: KernelMode,
) {
    assert_eq!(a.len(), m * k, "A length != m*k");
    assert_eq!(b.len(), k * n, "B length != k*n");
    assert_eq!(c.len(), m * n, "C length != m*n");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.iter_mut().for_each(|v| *v = 0.0);
        }
        return;
    }

    // Skinny fast path: for the M ≤ 16 products small-batch inference emits,
    // panel packing costs more than it saves — stream B directly through the
    // SIMD kernel with A broadcast from registers. Preserves the per-element
    // k chain, so it stays on the same accumulation tree as the packed path.
    if mode == KernelMode::Simd
        && m <= crate::simd::SKINNY_MAX_M
        && a_layout == Layout::Normal
        && b_layout == Layout::Normal
    {
        crate::simd::skinny_gemm(m, n, k, a, b, c, accumulate);
        return;
    }

    // Loop nest: k blocks (outer) → pack all of A once per k block →
    // column blocks of B → row blocks of C. Pack buffers are thread-local
    // so the multi-megabyte panels are mapped once per thread, not once
    // per call. Interchanging the jc/pc loops relative to the classic
    // ordering lets one A packing serve every column block; it does not
    // touch any per-element accumulation chain (each element still sees
    // its k-terms exactly once, in increasing-pc order).
    BPACK.with_borrow_mut(|bpack| {
        APACK.with_borrow_mut(|apack| {
            bpack.resize(KC * NC.min(n).next_multiple_of(NR), 0.0);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                // The microkernel reloads C at the start of each k block,
                // so splitting k never reorders the accumulation chain.
                let first = pc == 0 && !accumulate;
                apack.resize(kc * m.next_multiple_of(MR), 0.0);
                pack_a(apack, a, a_layout, m, k, 0, m, pc, kc);
                // Panels per MC row block; MC is a multiple of MR, so a
                // block's panels are a contiguous run of the packed A.
                let block_panels = MC / MR;
                for jc in (0..n).step_by(NC) {
                    let nc = NC.min(n - jc);
                    pack_b(bpack, b, b_layout, k, n, pc, kc, jc, nc);
                    // Row blocks of A / C are independent: parallelize
                    // here. The parallel path requires the C row-chunks to
                    // be contiguous, i.e. a single column block.
                    if parallel && nc == n {
                        let (aref, bref) = (&*apack, &*bpack);
                        c.par_chunks_mut(MC * n).enumerate().for_each(|(blk, cblk)| {
                            let mc = MC.min(m - blk * MC);
                            let ap = &aref[blk * block_panels * kc * MR..];
                            block_kernel(mc, nc, kc, ap, bref, cblk, n, 0, first, mode);
                        });
                    } else {
                        for ic in (0..m).step_by(MC) {
                            let mc = MC.min(m - ic);
                            let ap = &apack[(ic / MR) * kc * MR..];
                            block_kernel(
                                mc,
                                nc,
                                kc,
                                ap,
                                bpack,
                                &mut c[ic * n..],
                                n,
                                jc,
                                first,
                                mode,
                            );
                        }
                    }
                }
            }
        });
    });
}

thread_local! {
    /// Reused packed-panel buffers (see `gemm_with`). Entered by at most
    /// one `gemm` activation per thread: the parallel fan-out allocates
    /// per-closure `apack`s and only reads `bpack` through a shared borrow
    /// that ends before the next pack.
    static BPACK: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
    static APACK: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Packs the `kc × nc` block of `B` at `(pc, jc)` into `NR`-column panels:
/// panel `j0` holds `bpack[panel][p * NR + j] = B[pc + p, jc + j0 + j]`,
/// zero-padded to a full `NR` columns.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    bpack: &mut [f32],
    b: &[f32],
    layout: Layout,
    k: usize,
    n: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
) {
    let mut dst = 0;
    for j0 in (0..nc).step_by(NR) {
        let nr = NR.min(nc - j0);
        match layout {
            Layout::Normal => {
                for p in 0..kc {
                    let row = &b[(pc + p) * n + jc + j0..];
                    let panel = &mut bpack[dst + p * NR..dst + p * NR + NR];
                    panel[..nr].copy_from_slice(&row[..nr]);
                    panel[nr..].iter_mut().for_each(|v| *v = 0.0);
                }
            }
            Layout::Transposed => {
                // b is [n, k] row-major: B[p, j] = b[j * k + p].
                for p in 0..kc {
                    let panel = &mut bpack[dst + p * NR..dst + p * NR + NR];
                    for (j, v) in panel[..nr].iter_mut().enumerate() {
                        *v = b[(jc + j0 + j) * k + pc + p];
                    }
                    panel[nr..].iter_mut().for_each(|v| *v = 0.0);
                }
            }
        }
        dst += kc * NR;
    }
}

/// Packs the `mc × kc` block of `A` at `(ic, pc)` into `MR`-row panels:
/// panel `i0` holds `apack[panel][p * MR + i] = A[ic + i0 + i, pc + p]`,
/// zero-padded to a full `MR` rows.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    apack: &mut [f32],
    a: &[f32],
    layout: Layout,
    m: usize,
    k: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
) {
    let mut dst = 0;
    for i0 in (0..mc).step_by(MR) {
        let mr = MR.min(mc - i0);
        match layout {
            Layout::Normal => {
                for p in 0..kc {
                    let panel = &mut apack[dst + p * MR..dst + p * MR + MR];
                    for (i, v) in panel[..mr].iter_mut().enumerate() {
                        *v = a[(ic + i0 + i) * k + pc + p];
                    }
                    panel[mr..].iter_mut().for_each(|v| *v = 0.0);
                }
            }
            Layout::Transposed => {
                // a is [k, m] row-major: A[i, p] = a[p * m + i].
                for p in 0..kc {
                    let row = &a[(pc + p) * m + ic + i0..];
                    let panel = &mut apack[dst + p * MR..dst + p * MR + MR];
                    panel[..mr].copy_from_slice(&row[..mr]);
                    panel[mr..].iter_mut().for_each(|v| *v = 0.0);
                }
            }
        }
        dst += kc * MR;
    }
}

/// Runs the microkernel over every `MR × NR` tile of an `mc × nc` block.
/// `c` starts at row `ic` of the output (row stride `ldc`, column offset
/// `jc`).
#[allow(clippy::too_many_arguments)]
fn block_kernel(
    mc: usize,
    nc: usize,
    kc: usize,
    apack: &[f32],
    bpack: &[f32],
    c: &mut [f32],
    ldc: usize,
    jc: usize,
    first: bool,
    mode: KernelMode,
) {
    for (jp, j0) in (0..nc).step_by(NR).enumerate() {
        let nr = NR.min(nc - j0);
        let bpanel = &bpack[jp * kc * NR..(jp + 1) * kc * NR];
        for (ip, i0) in (0..mc).step_by(MR).enumerate() {
            let mr = MR.min(mc - i0);
            let apanel = &apack[ip * kc * MR..(ip + 1) * kc * MR];
            match mode {
                KernelMode::Scalar => {
                    scalar_microkernel(kc, apanel, bpanel, c, i0, jc + j0, ldc, mr, nr, first)
                }
                KernelMode::Simd => crate::simd::packed_microkernel(
                    kc,
                    apanel,
                    bpanel,
                    c,
                    i0,
                    jc + j0,
                    ldc,
                    mr,
                    nr,
                    first,
                ),
            }
        }
    }
}

/// The `MR × NR` register-tile kernel: loads the current `C` tile (or zeros
/// when `first`), adds `kc` rank-1 updates with a strictly sequential `p`
/// loop, and stores the tile back. The `j` loop over `NR` lanes is what the
/// compiler vectorizes.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn scalar_microkernel(
    kc: usize,
    apanel: &[f32],
    bpanel: &[f32],
    c: &mut [f32],
    row: usize,
    col: usize,
    ldc: usize,
    mr: usize,
    nr: usize,
    first: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if !first {
        for i in 0..mr {
            let crow = &c[(row + i) * ldc + col..];
            acc[i][..nr].copy_from_slice(&crow[..nr]);
        }
    }
    for (ap, bp) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)).take(kc) {
        for i in 0..MR {
            let av = ap[i];
            let row = &mut acc[i];
            for j in 0..NR {
                row[j] = fmadd(av, bp[j], row[j]);
            }
        }
    }
    for i in 0..mr {
        let crow = &mut c[(row + i) * ldc + col..];
        crow[..nr].copy_from_slice(&acc[i][..nr]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Triple-loop reference with the same per-element left-to-right k
    /// chain as the blocked kernel.
    fn reference(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk];
                for j in 0..n {
                    c[i * n + j] = fmadd(av, b[kk * n + j], c[i * n + j]);
                }
            }
        }
        c
    }

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        // Simple LCG so the test needs no RNG dependency.
        let mut state = seed as u64 * 2654435761 + 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn matches_reference_across_shapes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 16, 8),
            (5, 17, 9),
            (MR, NR, KC.min(33)),
            (MC + 3, NR + 1, 19),
            (70, 40, 12),
        ] {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut c = vec![0.0f32; m * n];
            gemm(m, n, k, &a, Layout::Normal, &b, Layout::Normal, &mut c, false);
            assert_eq!(c, reference(m, n, k, &a, &b), "shape ({m},{n},{k})");
        }
    }

    #[test]
    fn accumulate_adds_on_top() {
        let (m, n, k) = (6, 10, 4);
        let a = fill(m * k, 3);
        let b = fill(k * n, 4);
        let mut c = fill(m * n, 5);
        let base = c.clone();
        gemm(m, n, k, &a, Layout::Normal, &b, Layout::Normal, &mut c, true);
        let prod = reference(m, n, k, &a, &b);
        for ((cv, b0), p) in c.iter().zip(&base).zip(&prod) {
            assert!((cv - (b0 + p)).abs() < 1e-5);
        }
    }

    #[test]
    fn transposed_layouts_match_normal() {
        let (m, n, k) = (7, 11, 13);
        let a = fill(m * k, 6);
        let b = fill(k * n, 7);
        // Materialize transposes to feed the layout variants.
        let mut at = vec![0.0f32; m * k];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut bt = vec![0.0f32; k * n];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let mut c0 = vec![0.0f32; m * n];
        gemm(m, n, k, &a, Layout::Normal, &b, Layout::Normal, &mut c0, false);
        for (al, bl, aa, bb) in [
            (Layout::Transposed, Layout::Normal, &at, &b),
            (Layout::Normal, Layout::Transposed, &a, &bt),
            (Layout::Transposed, Layout::Transposed, &at, &bt),
        ] {
            let mut c = vec![0.0f32; m * n];
            gemm(m, n, k, aa, al, bb, bl, &mut c, false);
            assert_eq!(c, c0, "layouts ({al:?},{bl:?})");
        }
    }

    #[test]
    fn k_zero_clears_or_keeps_c() {
        let mut c = vec![1.0f32; 6];
        gemm(2, 3, 0, &[], Layout::Normal, &[], Layout::Normal, &mut c, true);
        assert_eq!(c, vec![1.0; 6]);
        gemm(2, 3, 0, &[], Layout::Normal, &[], Layout::Normal, &mut c, false);
        assert_eq!(c, vec![0.0; 6]);
    }

    #[test]
    fn forced_parallel_matches_sequential_bitwise() {
        // Row-block fan-out must not change any accumulation chain.
        let (m, n, k) = (MC * 2 + 5, 33, 40);
        let a = fill(m * k, 10);
        let b = fill(k * n, 11);
        let mut c_par = vec![0.0f32; m * n];
        let mut c_seq = vec![0.0f32; m * n];
        let mode = KernelMode::Scalar;
        gemm_with(m, n, k, &a, Layout::Normal, &b, Layout::Normal, &mut c_par, false, true, mode);
        gemm_with(m, n, k, &a, Layout::Normal, &b, Layout::Normal, &mut c_seq, false, false, mode);
        assert_eq!(c_par, c_seq);
        assert_eq!(c_seq, reference(m, n, k, &a, &b));
    }

    /// Shapes covering the skinny fast path (m ≤ 16), partial tiles and the
    /// packed SIMD microkernel (m > 16).
    const SIMD_SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (4, 2048, 20),
        (8, 130, 40),
        (16, 33, 7),
        (17, 33, 7),
        (70, 40, 12),
        (MC + 3, NR + 1, 19),
        (3, NR + 3, KC + 37),
    ];

    #[test]
    fn simd_mode_matches_scalar_mode() {
        // When simd_exact() the two kernel modes are bit-identical; when the
        // scalar chain is unfused they may differ by one rounding per
        // multiply-add, bounded here loosely (the oracle tests bound it in
        // ULP).
        for &(m, n, k) in SIMD_SHAPES {
            let a = fill(m * k, 20);
            let b = fill(k * n, 21);
            let mut c_scalar = vec![0.0f32; m * n];
            let mut c_simd = vec![0.0f32; m * n];
            gemm_seq_mode(
                m,
                n,
                k,
                &a,
                Layout::Normal,
                &b,
                Layout::Normal,
                &mut c_scalar,
                false,
                KernelMode::Scalar,
            );
            gemm_seq_mode(
                m,
                n,
                k,
                &a,
                Layout::Normal,
                &b,
                Layout::Normal,
                &mut c_simd,
                false,
                KernelMode::Simd,
            );
            if crate::simd::simd_exact() {
                assert_eq!(c_scalar, c_simd, "shape ({m},{n},{k})");
            } else {
                for (x, y) in c_scalar.iter().zip(&c_simd) {
                    assert!((x - y).abs() <= 1e-4, "shape ({m},{n},{k})");
                }
            }
        }
    }

    #[test]
    fn simd_mode_transposed_layouts_match_scalar() {
        // Transposed operands skip the skinny path but still hit the packed
        // SIMD microkernel.
        let (m, n, k) = (21, 19, 23);
        let a = fill(m * k, 22);
        let b = fill(k * n, 23);
        let mut at = vec![0.0f32; m * k];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut c_scalar = vec![0.0f32; m * n];
        let mut c_simd = vec![0.0f32; m * n];
        gemm_seq_mode(
            m,
            n,
            k,
            &at,
            Layout::Transposed,
            &b,
            Layout::Normal,
            &mut c_scalar,
            false,
            KernelMode::Scalar,
        );
        gemm_seq_mode(
            m,
            n,
            k,
            &at,
            Layout::Transposed,
            &b,
            Layout::Normal,
            &mut c_simd,
            false,
            KernelMode::Simd,
        );
        if crate::simd::simd_exact() {
            assert_eq!(c_scalar, c_simd);
        } else {
            for (x, y) in c_scalar.iter().zip(&c_simd) {
                assert!((x - y).abs() <= 1e-4);
            }
        }
    }

    #[test]
    fn simd_accumulate_matches_scalar_accumulate() {
        let (m, n, k) = (8, 50, 11);
        let a = fill(m * k, 24);
        let b = fill(k * n, 25);
        let base = fill(m * n, 26);
        let mut c_scalar = base.clone();
        let mut c_simd = base.clone();
        gemm_seq_mode(
            m,
            n,
            k,
            &a,
            Layout::Normal,
            &b,
            Layout::Normal,
            &mut c_scalar,
            true,
            KernelMode::Scalar,
        );
        gemm_seq_mode(
            m,
            n,
            k,
            &a,
            Layout::Normal,
            &b,
            Layout::Normal,
            &mut c_simd,
            true,
            KernelMode::Simd,
        );
        if crate::simd::simd_exact() {
            assert_eq!(c_scalar, c_simd);
        } else {
            for (x, y) in c_scalar.iter().zip(&c_simd) {
                assert!((x - y).abs() <= 1e-4);
            }
        }
    }

    #[test]
    fn kc_blocking_preserves_the_accumulation_chain() {
        // k > KC exercises the C-reload path; the reference chain must
        // still match bit-for-bit.
        let (m, n, k) = (3, NR + 3, KC + 37);
        let a = fill(m * k, 8);
        let b = fill(k * n, 9);
        let mut c = vec![0.0f32; m * n];
        gemm(m, n, k, &a, Layout::Normal, &b, Layout::Normal, &mut c, false);
        assert_eq!(c, reference(m, n, k, &a, &b));
    }
}
