//! Fully connected layers: the plain [`Linear`] layer on `[batch, features]`
//! and the [`TimeDistributed`] variant that applies a linear map at every
//! timestep of a `[batch, channels, time]` tensor (per-timestep heads of the
//! sequence-to-sequence baselines).
//!
//! Both route their products through [`crate::gemm::gemm`], which consults
//! the [`crate::dispatch`] layer for its inner kernel: forcing
//! `NILM_BACKEND=simd` (or running un-forced on a machine where the SIMD
//! kernels are bit-exact) moves these layers onto the explicit AVX2/NEON
//! microkernels with no call-site changes here.

use crate::gemm::{gemm, Layout};
use crate::init;
use crate::layer::{Layer, Mode, Param};
use crate::tensor::Tensor;
use rand::Rng;

/// Affine map `y = x W^T + b` on `[batch, in] -> [batch, out]`.
pub struct Linear {
    in_f: usize,
    out_f: usize,
    weight: Param, // [out, in]
    bias: Option<Param>,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Xavier initialization.
    pub fn new(rng: &mut impl Rng, in_f: usize, out_f: usize) -> Self {
        Self::with_bias(rng, in_f, out_f, true)
    }

    /// Creates a linear layer, optionally without bias.
    pub fn with_bias(rng: &mut impl Rng, in_f: usize, out_f: usize, bias: bool) -> Self {
        let weight = Param::new(init::xavier_uniform(rng, &[out_f, in_f], in_f, out_f));
        let bias = bias.then(|| Param::new(Tensor::zeros(&[out_f])));
        Linear { in_f, out_f, weight, bias, cached_input: None }
    }

    /// Immutable access to the weight matrix `[out, in]` (CAM needs the
    /// class-1 row).
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_f
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_f
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let (b, f) = x.dims2();
        assert_eq!(f, self.in_f, "Linear expected {} features, got {f}", self.in_f);
        // y[b, o] = sum_i x[b, i] * w[o, i] + bias[o] — one GEMM against the
        // transposed weight layout, no materialized transpose.
        let mut out = Tensor::zeros(&[b, self.out_f]);
        gemm(
            b,
            self.out_f,
            self.in_f,
            x.data(),
            Layout::Normal,
            self.weight.value.data(),
            Layout::Transposed,
            out.data_mut(),
            false,
        );
        if let Some(bias) = &self.bias {
            for bi in 0..b {
                for (o, &bv) in out.data_mut()[bi * self.out_f..(bi + 1) * self.out_f]
                    .iter_mut()
                    .zip(bias.value.data())
                {
                    *o += bv;
                }
            }
        }
        self.cached_input = if mode.caches_for_backward() { Some(x.clone()) } else { None };
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("Linear backward before forward");
        let (b, _) = grad.dims2();
        // dW += grad^T x  ([out, b] x [b, in]), accumulated in place.
        gemm(
            self.out_f,
            self.in_f,
            b,
            grad.data(),
            Layout::Transposed,
            x.data(),
            Layout::Normal,
            self.weight.grad.data_mut(),
            true,
        );
        if let Some(bias) = &mut self.bias {
            for bi in 0..b {
                for (g, &gy) in bias
                    .grad
                    .data_mut()
                    .iter_mut()
                    .zip(&grad.data()[bi * self.out_f..(bi + 1) * self.out_f])
                {
                    *g += gy;
                }
            }
        }
        // dX = grad W  ([b, out] x [out, in])
        grad.matmul(&self.weight.value)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }
}

/// Applies an inner [`Linear`] independently at every timestep:
/// `[batch, c_in, time] -> [batch, c_out, time]`.
pub struct TimeDistributed {
    inner: Linear,
    time: usize,
    batch: usize,
}

impl TimeDistributed {
    /// Wraps a linear map over the channel axis.
    pub fn new(rng: &mut impl Rng, in_c: usize, out_c: usize) -> Self {
        TimeDistributed { inner: Linear::new(rng, in_c, out_c), time: 0, batch: 0 }
    }

    fn to_rows(x: &Tensor) -> Tensor {
        // [b, c, t] -> [b*t, c]
        let (b, c, t) = x.dims3();
        let mut out = Tensor::zeros(&[b * t, c]);
        for bi in 0..b {
            for ci in 0..c {
                let row = x.row(bi, ci);
                for (ti, &v) in row.iter().enumerate() {
                    out.data_mut()[(bi * t + ti) * c + ci] = v;
                }
            }
        }
        out
    }

    fn from_rows(x: &Tensor, b: usize, t: usize) -> Tensor {
        // [b*t, c] -> [b, c, t]
        let (_, c) = x.dims2();
        let mut out = Tensor::zeros(&[b, c, t]);
        for bi in 0..b {
            for ti in 0..t {
                for ci in 0..c {
                    *out.at3_mut(bi, ci, ti) = x.data()[(bi * t + ti) * c + ci];
                }
            }
        }
        out
    }
}

impl Layer for TimeDistributed {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let (b, _, t) = x.dims3();
        self.batch = b;
        self.time = t;
        let rows = Self::to_rows(x);
        let y = self.inner.forward(&rows, mode);
        Self::from_rows(&y, b, t)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let rows = Self::to_rows(grad);
        let gx = self.inner.backward(&rows);
        Self::from_rows(&gx, self.batch, self.time)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.inner.visit_params(f);
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.inner.visit_state(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng;

    #[test]
    fn linear_matches_hand_computation() {
        let mut r = rng(0);
        let mut l = Linear::new(&mut r, 2, 2);
        l.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        if let Some(b) = &mut l.bias {
            b.value = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        }
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = l.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[13.0, 27.0]);
    }

    #[test]
    fn linear_backward_shapes() {
        let mut r = rng(1);
        let mut l = Linear::new(&mut r, 3, 5);
        let x = init::randn_tensor(&mut r, &[4, 3], 1.0);
        let y = l.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[4, 5]);
        let gx = l.backward(&Tensor::full(&[4, 5], 1.0));
        assert_eq!(gx.shape(), &[4, 3]);
    }

    #[test]
    fn linear_param_count() {
        let mut r = rng(2);
        let mut l = Linear::new(&mut r, 128, 2);
        assert_eq!(l.num_params(), 128 * 2 + 2);
    }

    #[test]
    fn time_distributed_applies_same_map_everywhere() {
        let mut r = rng(3);
        let mut td = TimeDistributed::new(&mut r, 2, 1);
        td.inner.weight.value = Tensor::from_vec(vec![1.0, -1.0], &[1, 2]);
        if let Some(b) = &mut td.inner.bias {
            b.value = Tensor::from_vec(vec![0.5], &[1]);
        }
        // x[ch0] = [1, 2], x[ch1] = [3, 4] -> y = x0 - x1 + 0.5 = [-1.5, -1.5]
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]);
        let y = td.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 1, 2]);
        assert_eq!(y.data(), &[-1.5, -1.5]);
    }

    #[test]
    fn row_major_round_trip() {
        let x = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[2, 3, 2]);
        let rows = TimeDistributed::to_rows(&x);
        let back = TimeDistributed::from_rows(&rows, 2, 2);
        assert_eq!(back, x);
    }
}
