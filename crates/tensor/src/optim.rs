//! Optimizers. State is kept inside the optimizer, keyed by the stable
//! visit order of [`crate::layer::Layer::visit_params`], so layers stay free
//! of optimizer concerns.

use crate::layer::Layer;
use crate::tensor::Tensor;

/// Stochastic gradient descent with optional momentum and weight decay.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, momentum: 0.0, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// SGD with momentum and decoupled weight decay.
    pub fn with_options(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd { lr, momentum, weight_decay, velocity: Vec::new() }
    }

    /// Applies one update using the gradients accumulated in `model`.
    pub fn step(&mut self, model: &mut dyn Layer) {
        let mut idx = 0;
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        model.visit_params(&mut |p| {
            if velocity.len() <= idx {
                velocity.push(Tensor::zeros(p.value.shape()));
            }
            let v = &mut velocity[idx];
            for i in 0..p.value.len() {
                let g = p.grad.data()[i] + wd * p.value.data()[i];
                let vi = momentum * v.data()[i] + g;
                v.data_mut()[i] = vi;
                p.value.data_mut()[i] -= lr * vi;
            }
            idx += 1;
        });
    }

    /// Updates the learning rate (for simple schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam with decoupled weight decay (AdamW-style when `weight_decay > 0`).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with standard defaults (β1=0.9, β2=0.999, ε=1e-8).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adam with decoupled weight decay.
    pub fn with_weight_decay(lr: f32, weight_decay: f32) -> Self {
        let mut a = Self::new(lr);
        a.weight_decay = weight_decay;
        a
    }

    /// Applies one update using the gradients accumulated in `model`.
    pub fn step(&mut self, model: &mut dyn Layer) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let (ms, vs) = (&mut self.m, &mut self.v);
        let mut idx = 0;
        model.visit_params(&mut |p| {
            if ms.len() <= idx {
                ms.push(Tensor::zeros(p.value.shape()));
                vs.push(Tensor::zeros(p.value.shape()));
            }
            let m = &mut ms[idx];
            let v = &mut vs[idx];
            for i in 0..p.value.len() {
                let g = p.grad.data()[i];
                let mi = b1 * m.data()[i] + (1.0 - b1) * g;
                let vi = b2 * v.data()[i] + (1.0 - b2) * g * g;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                let w = p.value.data()[i];
                p.value.data_mut()[i] = w - lr * (mhat / (vhat.sqrt() + eps) + wd * w);
            }
            idx += 1;
        });
    }

    /// Updates the learning rate (for simple schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Clips the global gradient norm of `model` to `max_norm`; returns the
/// pre-clip norm. Useful for the recurrent baselines.
pub fn clip_grad_norm(model: &mut dyn Layer, max_norm: f32) -> f32 {
    let mut sq = 0.0f32;
    model.visit_params(&mut |p| {
        sq += p.grad.data().iter().map(|g| g * g).sum::<f32>();
    });
    let norm = sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        model.visit_params(&mut |p| p.grad.scale_inplace(scale));
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng;
    use crate::layer::{Mode, Param};
    use crate::linear::Linear;
    use crate::loss::mse;
    use crate::tensor::Tensor;

    /// Train y = 2x - 1 with a single linear unit; both optimizers should
    /// drive the loss to ~0.
    fn fit_line(use_adam: bool) -> f32 {
        let mut r = rng(9);
        let mut model = Linear::new(&mut r, 1, 1);
        let xs = Tensor::from_vec(vec![-1.0, 0.0, 1.0, 2.0], &[4, 1]);
        let ys = Tensor::from_vec(vec![-3.0, -1.0, 1.0, 3.0], &[4, 1]);
        let mut sgd = Sgd::with_options(0.1, 0.9, 0.0);
        let mut adam = Adam::new(0.1);
        let mut last = f32::MAX;
        for _ in 0..200 {
            model.zero_grad();
            let pred = model.forward(&xs, Mode::Train);
            let (l, g) = mse(&pred, &ys);
            model.backward(&g);
            if use_adam {
                adam.step(&mut model);
            } else {
                sgd.step(&mut model);
            }
            last = l;
        }
        last
    }

    #[test]
    fn sgd_fits_a_line() {
        assert!(fit_line(false) < 1e-3);
    }

    #[test]
    fn adam_fits_a_line() {
        assert!(fit_line(true) < 1e-3);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        struct OneParam(Param);
        impl Layer for OneParam {
            fn forward(&mut self, x: &Tensor, _m: Mode) -> Tensor {
                x.clone()
            }
            fn backward(&mut self, g: &Tensor) -> Tensor {
                g.clone()
            }
            fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
                f(&mut self.0);
            }
        }
        let mut p = OneParam(Param::new(Tensor::zeros(&[4])));
        p.0.grad = Tensor::from_slice(&[3.0, 4.0, 0.0, 0.0]); // norm 5
        let pre = clip_grad_norm(&mut p, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((p.0.grad.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut r = rng(10);
        let mut model = Linear::new(&mut r, 2, 2);
        let before: f32 = {
            let mut n = 0.0;
            model.visit_params(&mut |p| n += p.value.norm());
            n
        };
        // Zero gradients: only decay acts.
        let mut adam = Adam::with_weight_decay(0.01, 0.5);
        model.zero_grad();
        for _ in 0..10 {
            adam.step(&mut model);
        }
        let after: f32 = {
            let mut n = 0.0;
            model.visit_params(&mut |p| n += p.value.norm());
            n
        };
        assert!(after < before);
    }
}
