//! Pooling and resampling layers: max/average pooling, global average
//! pooling (the GAP layer that makes CAM possible), and nearest/linear
//! upsampling used by the UNet/TPNILM decoders.

use crate::layer::{Layer, Mode};
use crate::tensor::Tensor;

/// Non-overlapping max pooling along time (`kernel == stride`).
pub struct MaxPool1d {
    k: usize,
    argmax: Vec<usize>,
    in_shape: Vec<usize>,
}

impl MaxPool1d {
    /// Creates a max-pool with window and stride `k`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        MaxPool1d { k, argmax: Vec::new(), in_shape: Vec::new() }
    }

    /// Output length for input length `t` (floor division; tail dropped).
    pub fn out_len(&self, t: usize) -> usize {
        t / self.k
    }
}

impl Layer for MaxPool1d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let (b, c, t) = x.dims3();
        let to = self.out_len(t);
        assert!(to > 0, "MaxPool1d window {} longer than input {t}", self.k);
        let mut out = Tensor::zeros(&[b, c, to]);
        self.argmax = vec![0; b * c * to];
        self.in_shape = x.shape().to_vec();
        for bi in 0..b {
            for ci in 0..c {
                let xr = x.row(bi, ci);
                let or = out.row_mut(bi, ci);
                for (toi, o) in or.iter_mut().enumerate() {
                    let start = toi * self.k;
                    let window = &xr[start..start + self.k];
                    let (mut best_i, mut best) = (0usize, f32::NEG_INFINITY);
                    for (i, &v) in window.iter().enumerate() {
                        if v > best {
                            best = v;
                            best_i = i;
                        }
                    }
                    *o = best;
                    self.argmax[(bi * c + ci) * to + toi] = start + best_i;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (b, c, to) = grad.dims3();
        let mut dx = Tensor::zeros(&self.in_shape);
        for bi in 0..b {
            for ci in 0..c {
                for toi in 0..to {
                    let src = self.argmax[(bi * c + ci) * to + toi];
                    dx.row_mut(bi, ci)[src] += grad.at3(bi, ci, toi);
                }
            }
        }
        dx
    }
}

/// Non-overlapping average pooling along time (`kernel == stride`).
pub struct AvgPool1d {
    k: usize,
    in_shape: Vec<usize>,
}

impl AvgPool1d {
    /// Creates an average pool with window and stride `k`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        AvgPool1d { k, in_shape: Vec::new() }
    }

    /// Output length for input length `t`.
    pub fn out_len(&self, t: usize) -> usize {
        t / self.k
    }
}

impl Layer for AvgPool1d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let (b, c, t) = x.dims3();
        let to = self.out_len(t);
        assert!(to > 0, "AvgPool1d window {} longer than input {t}", self.k);
        self.in_shape = x.shape().to_vec();
        let mut out = Tensor::zeros(&[b, c, to]);
        let inv = 1.0 / self.k as f32;
        for bi in 0..b {
            for ci in 0..c {
                let xr = x.row(bi, ci);
                let or = out.row_mut(bi, ci);
                for (toi, o) in or.iter_mut().enumerate() {
                    let start = toi * self.k;
                    *o = xr[start..start + self.k].iter().sum::<f32>() * inv;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (b, c, to) = grad.dims3();
        let mut dx = Tensor::zeros(&self.in_shape);
        let inv = 1.0 / self.k as f32;
        for bi in 0..b {
            for ci in 0..c {
                for toi in 0..to {
                    let g = grad.at3(bi, ci, toi) * inv;
                    let start = toi * self.k;
                    for d in &mut dx.row_mut(bi, ci)[start..start + self.k] {
                        *d += g;
                    }
                }
            }
        }
        dx
    }
}

/// Global average pooling over time: `[b, c, t] -> [b, c]`.
///
/// This is the layer that enables Class Activation Maps: the classifier that
/// follows sees only per-channel means, so its weights linearly score each
/// feature map (paper, Definition II.1).
#[derive(Default)]
pub struct GlobalAvgPool1d {
    in_shape: Vec<usize>,
}

impl Layer for GlobalAvgPool1d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let (b, c, t) = x.dims3();
        self.in_shape = x.shape().to_vec();
        let mut out = Tensor::zeros(&[b, c]);
        let inv = 1.0 / t as f32;
        for bi in 0..b {
            for ci in 0..c {
                *out.at2_mut(bi, ci) = x.row(bi, ci).iter().sum::<f32>() * inv;
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (b, c) = grad.dims2();
        let t = self.in_shape[2];
        let mut dx = Tensor::zeros(&self.in_shape);
        let inv = 1.0 / t as f32;
        for bi in 0..b {
            for ci in 0..c {
                let g = grad.at2(bi, ci) * inv;
                dx.row_mut(bi, ci).iter_mut().for_each(|d| *d += g);
            }
        }
        dx
    }
}

/// Upsampling mode for [`Upsample1d`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpsampleMode {
    /// Each input sample is repeated `factor` times.
    Nearest,
    /// Linear interpolation between input samples (align-corners=false style).
    Linear,
}

/// Upsamples the time axis by an integer factor.
pub struct Upsample1d {
    factor: usize,
    mode: UpsampleMode,
    in_shape: Vec<usize>,
}

impl Upsample1d {
    /// Creates an upsampler multiplying the time axis by `factor`.
    pub fn new(factor: usize, mode: UpsampleMode) -> Self {
        assert!(factor > 0);
        Upsample1d { factor, mode, in_shape: Vec::new() }
    }

    /// Source position and interpolation weight for output index `to`.
    /// Returns `(i0, i1, w1)` with `out = (1-w1)*x[i0] + w1*x[i1]`.
    fn linear_coords(&self, to: usize, t_in: usize) -> (usize, usize, f32) {
        let f = self.factor as f32;
        let src = (to as f32 + 0.5) / f - 0.5;
        let src = src.clamp(0.0, (t_in - 1) as f32);
        let i0 = src.floor() as usize;
        let i1 = (i0 + 1).min(t_in - 1);
        (i0, i1, src - i0 as f32)
    }
}

impl Layer for Upsample1d {
    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let (b, c, t) = x.dims3();
        self.in_shape = x.shape().to_vec();
        let to = t * self.factor;
        let mut out = Tensor::zeros(&[b, c, to]);
        for bi in 0..b {
            for ci in 0..c {
                let xr = x.row(bi, ci);
                let or = out.row_mut(bi, ci);
                match self.mode {
                    UpsampleMode::Nearest => {
                        for (toi, o) in or.iter_mut().enumerate() {
                            *o = xr[toi / self.factor];
                        }
                    }
                    UpsampleMode::Linear => {
                        for toi in 0..to {
                            let (i0, i1, w1) = self.linear_coords(toi, t);
                            or[toi] = (1.0 - w1) * xr[i0] + w1 * xr[i1];
                        }
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (b, c, to) = grad.dims3();
        let t = self.in_shape[2];
        let mut dx = Tensor::zeros(&self.in_shape);
        for bi in 0..b {
            for ci in 0..c {
                let gr = grad.row(bi, ci);
                let dxr = dx.row_mut(bi, ci);
                match self.mode {
                    UpsampleMode::Nearest => {
                        for (toi, &g) in gr.iter().enumerate() {
                            dxr[toi / self.factor] += g;
                        }
                    }
                    UpsampleMode::Linear => {
                        for (toi, &g) in gr.iter().enumerate().take(to) {
                            let (i0, i1, w1) = self.linear_coords(toi, t);
                            dxr[i0] += (1.0 - w1) * g;
                            dxr[i1] += w1 * g;
                        }
                    }
                }
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_maxima_and_routes_grads() {
        let mut mp = MaxPool1d::new(2);
        let x = Tensor::from_vec(vec![1.0, 5.0, 2.0, 0.0], &[1, 1, 4]);
        let y = mp.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[5.0, 2.0]);
        let g = mp.backward(&Tensor::from_vec(vec![1.0, 1.0], &[1, 1, 2]));
        assert_eq!(g.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn maxpool_drops_tail() {
        let mut mp = MaxPool1d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 9.0], &[1, 1, 3]);
        let y = mp.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 1, 1]);
        assert_eq!(y.data(), &[2.0]);
    }

    #[test]
    fn avgpool_averages_and_spreads_grads() {
        let mut ap = AvgPool1d::new(2);
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 4]);
        let y = ap.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[2.0, 6.0]);
        let g = ap.backward(&Tensor::from_vec(vec![2.0, 4.0], &[1, 1, 2]));
        assert_eq!(g.data(), &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn gap_reduces_time_axis() {
        let mut gap = GlobalAvgPool1d::default();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0], &[1, 2, 3]);
        let y = gap.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[2.0, 20.0]);
        let g = gap.backward(&Tensor::from_vec(vec![3.0, 6.0], &[1, 2]));
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn nearest_upsample_repeats() {
        let mut up = Upsample1d::new(2, UpsampleMode::Nearest);
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 1, 2]);
        let y = up.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[1.0, 1.0, 2.0, 2.0]);
        let g = up.backward(&Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 4]));
        assert_eq!(g.data(), &[3.0, 7.0]);
    }

    #[test]
    fn linear_upsample_interpolates_between_samples() {
        let mut up = Upsample1d::new(2, UpsampleMode::Linear);
        let x = Tensor::from_vec(vec![0.0, 4.0], &[1, 1, 2]);
        let y = up.forward(&x, Mode::Eval);
        // positions: src = (to+0.5)/2-0.5 -> [-0.25 clamp 0, 0.25, 0.75, 1.25 clamp 1]
        assert_eq!(y.data()[0], 0.0);
        assert!((y.data()[1] - 1.0).abs() < 1e-6);
        assert!((y.data()[2] - 3.0).abs() < 1e-6);
        assert_eq!(y.data()[3], 4.0);
    }

    #[test]
    fn upsample_then_avgpool_is_identity() {
        let mut up = Upsample1d::new(3, UpsampleMode::Nearest);
        let mut ap = AvgPool1d::new(3);
        let x = Tensor::from_vec(vec![1.0, -2.0, 0.5], &[1, 1, 3]);
        let y = ap.forward(&up.forward(&x, Mode::Eval), Mode::Eval);
        for (a, b) in y.data().iter().zip(x.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
