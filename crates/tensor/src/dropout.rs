//! Inverted dropout: active only in [`Mode::Train`], identity in eval.

use crate::layer::{Layer, Mode};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Inverted dropout with drop probability `p`.
///
/// Each layer owns its RNG (seeded at construction) so training runs are
/// reproducible without threading an RNG through every forward call.
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Vec<f32>,
    train_pass: bool,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` in `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1), got {p}");
        Dropout { p, rng: StdRng::seed_from_u64(seed), mask: Vec::new(), train_pass: false }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        match mode {
            Mode::Eval | Mode::Infer => {
                self.train_pass = false;
                x.clone()
            }
            Mode::Train => {
                self.train_pass = true;
                if self.p == 0.0 {
                    self.mask = vec![1.0; x.len()];
                    return x.clone();
                }
                let keep = 1.0 - self.p;
                let inv_keep = 1.0 / keep;
                self.mask = (0..x.len())
                    .map(|_| if self.rng.random::<f32>() < keep { inv_keep } else { 0.0 })
                    .collect();
                let data = x.data().iter().zip(&self.mask).map(|(&v, &m)| v * m).collect();
                Tensor::from_vec(data, x.shape())
            }
        }
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        if !self.train_pass {
            return grad.clone();
        }
        assert_eq!(grad.len(), self.mask.len(), "Dropout backward before forward");
        let data = grad.data().iter().zip(&self.mask).map(|(&g, &m)| g * m).collect();
        Tensor::from_vec(data, grad.shape())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(d.forward(&x, Mode::Eval), x);
        assert_eq!(d.backward(&x), x);
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut d = Dropout::new(0.3, 7);
        let x = Tensor::full(&[10_000], 1.0);
        let y = d.forward(&x, Mode::Train);
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::full(&[64], 1.0);
        let y = d.forward(&x, Mode::Train);
        let g = d.backward(&Tensor::full(&[64], 1.0));
        // Wherever the output was zeroed, the gradient must be zeroed too.
        for (yv, gv) in y.data().iter().zip(g.data()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }

    #[test]
    fn zero_probability_is_identity_in_train() {
        let mut d = Dropout::new(0.0, 3);
        let x = Tensor::from_slice(&[1.0, -1.0]);
        assert_eq!(d.forward(&x, Mode::Train), x);
    }
}
