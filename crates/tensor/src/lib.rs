//! # nilm-tensor
//!
//! A minimal, dependency-light CPU tensor and neural-network substrate built
//! for the CamAL reproduction. It provides exactly the layers the paper's
//! models need — 1-D convolutions, batch/layer norm, pooling (including the
//! GAP layer that enables Class Activation Maps), GRU/BiGRU, multi-head
//! self-attention — with explicit, numerically verified backward passes and
//! SGD/Adam optimizers.
//!
//! Shape convention: sequence models operate on `[batch, channels, time]`
//! tensors; classifier heads operate on `[batch, features]`.
//!
//! ## Example
//!
//! ```
//! use nilm_tensor::prelude::*;
//!
//! let mut rng = nilm_tensor::init::rng(0);
//! let mut model = Sequential::new()
//!     .push(Conv1d::new(&mut rng, 1, 4, 3, Padding::Same))
//!     .push(ReLU::default())
//!     .push(GlobalAvgPool1d::default())
//!     .push(Linear::new(&mut rng, 4, 2));
//! let x = Tensor::zeros(&[8, 1, 32]);
//! let logits = model.forward(&x, Mode::Eval);
//! assert_eq!(logits.shape(), &[8, 2]);
//! ```

pub mod activation;
pub mod attention;
pub mod conv;
pub mod dispatch;
pub mod dropout;
pub mod gemm;
pub mod gradcheck;
pub mod im2col;
pub mod init;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod norm;
pub mod optim;
pub mod oracle;
pub mod pool;
pub mod rnn;
pub mod serialize;
pub mod simd;
pub mod tensor;

/// Convenient glob import for model construction.
pub mod prelude {
    pub use crate::activation::{Gelu, ReLU, Sigmoid, Tanh};
    pub use crate::attention::{
        MultiHeadSelfAttention, PositionalEncoding, TransformerEncoderLayer,
    };
    pub use crate::conv::{conv_backend, set_conv_backend, Conv1d, ConvBackend, Padding};
    pub use crate::dispatch::{forced_backend, set_forced_backend, Backend};
    pub use crate::dropout::Dropout;
    pub use crate::layer::{Identity, Layer, Mode, Param, Residual, Sequential};
    pub use crate::linear::{Linear, TimeDistributed};
    pub use crate::norm::{BatchNorm1d, LayerNorm};
    pub use crate::optim::{Adam, Sgd};
    pub use crate::pool::{AvgPool1d, GlobalAvgPool1d, MaxPool1d, Upsample1d, UpsampleMode};
    pub use crate::rnn::{BiGru, Gru};
    pub use crate::tensor::Tensor;
}
