//! Oracle-driven property suite for the dispatch layer: every compute
//! backend must reproduce the naive reference within the documented ULP
//! budget across randomized GEMM and convolution problems (see
//! [`nilm_tensor::oracle`] for the harness and the tolerance model).
//!
//! The suite honours `NILM_BACKEND`: when the variable forces a backend,
//! only that backend is exercised — CI sweeps the suite once per value
//! (`naive`, `gemm`, `simd`), plus once with `NILM_SIMD=off` to pin the
//! portable-scalar fallback, so every dispatch path is oracle-checked on
//! every build. Without the variable, one run covers all backends.

use nilm_tensor::conv::{ConvBackend, Padding};
use nilm_tensor::dispatch::{env_backend, Backend};
use nilm_tensor::gemm::Layout;
use nilm_tensor::oracle::{ulp_budget, ConvSpec, GemmSpec, ULP_BUDGET_EXACT};
use proptest::prelude::*;

/// Backends under test: the `NILM_BACKEND`-forced backend when set, every
/// backend otherwise.
fn backends_under_test() -> Vec<Backend> {
    match env_backend() {
        Some(b) => vec![b],
        None => Backend::all().to_vec(),
    }
}

/// The scalar backends preserve the reference chain on every build (budget
/// 0); the SIMD backend earns a nonzero budget only on builds whose scalar
/// path is compiled without fused multiply-adds.
fn budget_for(backend: Backend) -> u64 {
    match backend {
        Backend::Simd => ulp_budget(),
        _ => ULP_BUDGET_EXACT,
    }
}

fn conv_backend(b: Backend) -> ConvBackend {
    match b {
        Backend::Naive => ConvBackend::Naive,
        Backend::Gemm => ConvBackend::Gemm,
        Backend::Simd => ConvBackend::Simd,
    }
}

fn layout_strategy() -> impl Strategy<Value = Layout> {
    prop_oneof![Just(Layout::Normal), Just(Layout::Transposed)]
}

fn padding_strategy() -> impl Strategy<Value = Padding> {
    prop_oneof![
        Just(Padding::Same).boxed(),
        Just(Padding::Valid).boxed(),
        (1usize..4).prop_map(Padding::Explicit).boxed(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random GEMMs: sizes straddle the skinny fast path (`m <= 16`), the
    /// packed-panel blocking thresholds, and partial MR/NR edge tiles.
    #[test]
    fn every_backend_reproduces_the_gemm_oracle(
        seed in 0u64..1_000_000,
        m in 1usize..40,
        n in 1usize..70,
        k in 1usize..50,
        a_layout in layout_strategy(),
        b_layout in layout_strategy(),
        accumulate in prop_oneof![Just(true), Just(false)],
    ) {
        let spec = GemmSpec { m, n, k, a_layout, b_layout, accumulate, seed };
        for backend in backends_under_test() {
            spec.check(backend, budget_for(backend));
        }
    }

    /// Random convolutions (forward + both gradients) across strides,
    /// dilations and padding policies.
    #[test]
    fn every_backend_reproduces_the_conv_oracle(
        seed in 0u64..1_000_000,
        batch in 1usize..4,
        in_c in 1usize..5,
        out_c in 1usize..7,
        k in 1usize..8,
        stride in prop_oneof![Just(1usize), Just(2usize), Just(3usize)],
        dilation in prop_oneof![Just(1usize), Just(2usize), Just(4usize)],
        padding in padding_strategy(),
        t_extra in 0usize..17,
        bias in prop_oneof![Just(true), Just(false)],
    ) {
        let spec = ConvSpec {
            in_c,
            out_c,
            k,
            stride,
            dilation,
            padding,
            batch,
            t_in: (k - 1) * dilation + 1 + stride * 2 + t_extra,
            bias,
            seed,
        };
        for backend in backends_under_test() {
            spec.check(conv_backend(backend), budget_for(backend));
        }
    }
}

/// The lowered-GEMM shapes the CamAL serving path actually emits (skinny
/// rows at bench width, paper-width rows, long streaming columns) — pinned
/// explicitly so a kernel regression on the shapes that matter cannot hide
/// behind proptest's randomness.
#[test]
fn serving_shapes_are_oracle_checked_on_every_backend() {
    let shapes: &[(usize, usize, usize)] = &[
        (4, 2048, 5),    // bench-width first conv, batch-wide columns
        (8, 2048, 40),   // bench-width mid conv
        (16, 128, 20),   // skinny-path boundary (m == SKINNY_MAX_M)
        (17, 128, 20),   // first non-skinny row count
        (64, 2048, 320), // paper-width conv
        (2, 16, 128),    // classifier head (classes x batch over channels)
    ];
    for &(m, n, k) in shapes {
        for layout in [Layout::Normal, Layout::Transposed] {
            let spec = GemmSpec {
                m,
                n,
                k,
                a_layout: layout,
                b_layout: Layout::Normal,
                accumulate: false,
                seed: (m * 31 + n * 7 + k) as u64,
            };
            for backend in backends_under_test() {
                spec.check(backend, budget_for(backend));
            }
        }
    }
}

/// The attention GEMM shapes a TransApp forward emits — per-head QKᵀ score
/// matrices, attention-weighted V products, the fused QKV/output projections
/// and the encoder feed-forward — at both smoke scale (d_model 16, 2 heads,
/// window 128/downsample 4) and paper scale (d_model 128, 8 heads, window
/// 510/downsample 4). Pinned so `NILM_BACKEND=naive|gemm|simd` stays within
/// budget through the attention path, not just the conv path.
#[test]
fn attention_shapes_are_oracle_checked_on_every_backend() {
    let shapes: &[(usize, usize, usize)] = &[
        // Smoke scale: td = 32, head_dim = 8.
        (32, 32, 8),  // QKᵀ scores per head
        (32, 8, 32),  // softmax(scores) · V per head
        (16, 32, 16), // Q/K/V and output projections over time columns
        (32, 32, 16), // feed-forward up-projection (d_ff x td over d_model)
        (16, 32, 32), // feed-forward down-projection
        // Paper scale: td = 128, head_dim = 16.
        (128, 128, 16),  // QKᵀ scores per head
        (128, 16, 128),  // softmax(scores) · V per head
        (128, 128, 128), // projections at paper width
        (256, 128, 128), // feed-forward up-projection
    ];
    for &(m, n, k) in shapes {
        for layout in [Layout::Normal, Layout::Transposed] {
            let spec = GemmSpec {
                m,
                n,
                k,
                a_layout: layout,
                b_layout: Layout::Normal,
                accumulate: false,
                seed: (m * 131 + n * 17 + k * 3) as u64,
            };
            for backend in backends_under_test() {
                spec.check(backend, budget_for(backend));
            }
        }
    }
}

/// The ResNet's conv geometries at bench scale, forward and backward.
#[test]
fn resnet_conv_geometries_are_oracle_checked() {
    for &(in_c, out_c, k) in
        &[(1usize, 4usize, 5usize), (4, 4, 5), (4, 4, 3), (1, 4, 1), (4, 8, 5), (8, 8, 3)]
    {
        let spec = ConvSpec {
            in_c,
            out_c,
            k,
            stride: 1,
            dilation: 1,
            padding: Padding::Same,
            batch: 3,
            t_in: 32,
            bias: false,
            seed: (in_c * 100 + out_c * 10 + k) as u64,
        };
        for backend in backends_under_test() {
            spec.check(conv_backend(backend), budget_for(backend));
        }
    }
}
