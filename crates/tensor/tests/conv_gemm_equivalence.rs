//! The safety net of the im2col + GEMM convolution backend: across random
//! shapes, strides {1,2,3}, dilations {1,2,4} and all three [`Padding`]
//! variants, the GEMM path must reproduce the shifted-axpy reference path
//! **bit for bit** — forward output, input gradient and parameter gradients.
//!
//! Exactness (not a tolerance) is possible because both backends accumulate
//! every output element over `(c_in, tap)`, every weight-gradient element
//! over `(batch, t)`, and every input-gradient element over `(c_out, tap)`
//! in the same left-to-right order; see `nilm_tensor::gemm` for the
//! contract. A tolerance here would hide genuine indexing bugs (an
//! off-by-one pad produces small errors on smooth random inputs).

//! The SIMD backend rides the same contract: when
//! [`nilm_tensor::simd::simd_exact`] holds (every multiply-add fused on both
//! paths) it too must match bit for bit; otherwise it is held to the oracle's
//! ULP budget (see `nilm_tensor::oracle`).

use nilm_tensor::conv::{Conv1d, ConvBackend, Padding};
use nilm_tensor::init::{randn_tensor, rng};
use nilm_tensor::layer::{Layer, Mode};
use nilm_tensor::oracle::{assert_within, ulp_budget};
use nilm_tensor::tensor::Tensor;
use proptest::prelude::*;

/// One forward + backward pass on a fixed backend; returns
/// `(output, input_grad, param_grads)`.
fn run_pass(
    conv: &mut Conv1d,
    backend: ConvBackend,
    x: &Tensor,
    upstream: &Tensor,
) -> (Tensor, Tensor, Vec<Tensor>) {
    conv.set_backend(Some(backend));
    let y = conv.forward(x, Mode::Train);
    conv.zero_grad();
    let dx = conv.backward(upstream);
    let mut grads = Vec::new();
    conv.visit_params(&mut |p| grads.push(p.grad.clone()));
    (y, dx, grads)
}

/// Regression: padding deeper than the input makes some kernel taps never
/// overlap it (`valid_out_range` returns an empty range with a negative
/// offset); both backends must treat those taps as pure zeros instead of
/// forming a wrapped slice.
#[test]
fn taps_fully_outside_the_input_are_zero_not_a_panic() {
    let mut r = rng(11);
    let mut conv = Conv1d::with_options(&mut r, 1, 1, 7, Padding::Explicit(3), 1, 1, false);
    let x = randn_tensor(&mut r, &[1, 1, 2], 1.0);
    let t_out = conv.out_len(2);
    let g = randn_tensor(&mut r, &[1, 1, t_out], 1.0);
    let (y_n, dx_n, g_n) = run_pass(&mut conv, ConvBackend::Naive, &x, &g);
    let (y_g, dx_g, g_g) = run_pass(&mut conv, ConvBackend::Gemm, &x, &g);
    assert_eq!(y_n.data(), y_g.data());
    assert_eq!(dx_n.data(), dx_g.data());
    for (a, b) in g_n.iter().zip(&g_g) {
        assert_eq!(a.data(), b.data());
    }
}

fn padding_strategy() -> impl Strategy<Value = Padding> {
    prop_oneof![
        Just(Padding::Same).boxed(),
        Just(Padding::Valid).boxed(),
        (1usize..4).prop_map(Padding::Explicit).boxed(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Forward, dX, dW and db agree bitwise between the two backends.
    #[test]
    fn gemm_path_bit_matches_naive_path(
        seed in 0u64..1_000_000,
        batch in 1usize..4,
        in_c in 1usize..5,
        out_c in 1usize..6,
        k in 1usize..8,
        stride in prop_oneof![Just(1usize), Just(2usize), Just(3usize)],
        dilation in prop_oneof![Just(1usize), Just(2usize), Just(4usize)],
        padding in padding_strategy(),
        t_extra in 0usize..17,
        bias in prop_oneof![Just(true), Just(false)],
    ) {
        // Keep the input long enough for the receptive field under Valid
        // padding at the largest stride/dilation combination.
        let t_in = (k - 1) * dilation + 1 + stride * 2 + t_extra;
        let mut r = rng(seed);
        let mut conv =
            Conv1d::with_options(&mut r, in_c, out_c, k, padding, stride, dilation, bias);
        let x = randn_tensor(&mut r, &[batch, in_c, t_in], 1.0);
        let t_out = conv.out_len(t_in);
        let upstream = randn_tensor(&mut r, &[batch, out_c, t_out], 1.0);

        let (y_n, dx_n, g_n) = run_pass(&mut conv, ConvBackend::Naive, &x, &upstream);
        let (y_g, dx_g, g_g) = run_pass(&mut conv, ConvBackend::Gemm, &x, &upstream);

        prop_assert_eq!(y_n.shape(), y_g.shape());
        prop_assert!(
            y_n.data() == y_g.data(),
            "forward mismatch: k={k} s={stride} d={dilation} pad={padding:?} t={t_in}"
        );
        prop_assert!(
            dx_n.data() == dx_g.data(),
            "dX mismatch: k={k} s={stride} d={dilation} pad={padding:?} t={t_in}"
        );
        prop_assert_eq!(g_n.len(), g_g.len());
        for (a, b) in g_n.iter().zip(&g_g) {
            prop_assert!(
                a.data() == b.data(),
                "param grad mismatch: k={k} s={stride} d={dilation} pad={padding:?} t={t_in}"
            );
        }

        // The SIMD consumer of the same lowering: bit-exact when the build
        // fuses scalar multiply-adds too, within the ULP budget otherwise.
        let (y_s, dx_s, g_s) = run_pass(&mut conv, ConvBackend::Simd, &x, &upstream);
        let budget = ulp_budget();
        let label = format!("simd k={k} s={stride} d={dilation} pad={padding:?} t={t_in}");
        assert_within(&format!("{label} forward"), y_s.data(), y_n.data(), budget);
        assert_within(&format!("{label} dX"), dx_s.data(), dx_n.data(), budget);
        for (i, (a, b)) in g_n.iter().zip(&g_s).enumerate() {
            assert_within(&format!("{label} grad[{i}]"), b.data(), a.data(), budget);
        }
    }

    /// Repeated forward/backward cycles keep accumulating identically
    /// (gradient accumulation across calls must not diverge either).
    #[test]
    fn grad_accumulation_matches_across_two_steps(
        seed in 0u64..1_000_000,
        k in 1usize..6,
        padding in padding_strategy(),
    ) {
        let t_in = 24;
        let mut r = rng(seed ^ 0xACC);
        let mut conv = Conv1d::with_options(&mut r, 2, 3, k, padding, 1, 1, true);
        let x1 = randn_tensor(&mut r, &[2, 2, t_in], 1.0);
        let x2 = randn_tensor(&mut r, &[2, 2, t_in], 1.0);
        let t_out = conv.out_len(t_in);
        let g1 = randn_tensor(&mut r, &[2, 3, t_out], 1.0);
        let g2 = randn_tensor(&mut r, &[2, 3, t_out], 1.0);

        let mut accumulate = |backend: ConvBackend| -> Vec<Tensor> {
            conv.set_backend(Some(backend));
            conv.zero_grad();
            let _ = conv.forward(&x1, Mode::Train);
            let _ = conv.backward(&g1);
            let _ = conv.forward(&x2, Mode::Train);
            let _ = conv.backward(&g2);
            let mut grads = Vec::new();
            conv.visit_params(&mut |p| grads.push(p.grad.clone()));
            grads
        };
        let gn = accumulate(ConvBackend::Naive);
        let gg = accumulate(ConvBackend::Gemm);
        for (a, b) in gn.iter().zip(&gg) {
            prop_assert!(a.data() == b.data(), "accumulated grads diverged (k={k}, pad={padding:?})");
        }
    }
}
