//! Property-based tests for the NN substrate: algebraic identities that must
//! hold for any input, complementing the pointwise numerical gradient checks.

use nilm_tensor::activation::{softmax_rows, Sigmoid};
use nilm_tensor::conv::{Conv1d, Padding};
use nilm_tensor::init::rng;
use nilm_tensor::layer::{Layer, Mode};
use nilm_tensor::loss::{bce_with_logits, cross_entropy};
use nilm_tensor::pool::{AvgPool1d, GlobalAvgPool1d};
use nilm_tensor::tensor::Tensor;
use proptest::prelude::*;

fn signal(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-5.0f32..5.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Convolution is linear: conv(a*x + b*y) == a*conv(x) + b*conv(y)
    /// (bias-free).
    #[test]
    fn conv_is_linear(xs in signal(24), ys in signal(24), a in -2.0f32..2.0, b in -2.0f32..2.0) {
        let mut r = rng(1);
        let mut conv = Conv1d::with_options(&mut r, 1, 2, 3, Padding::Same, 1, 1, false);
        let x = Tensor::from_vec(xs.clone(), &[1, 1, 24]);
        let y = Tensor::from_vec(ys.clone(), &[1, 1, 24]);
        let combo = Tensor::from_vec(
            xs.iter().zip(&ys).map(|(u, v)| a * u + b * v).collect(),
            &[1, 1, 24],
        );
        let out_combo = conv.forward(&combo, Mode::Eval);
        let out_x = conv.forward(&x, Mode::Eval);
        let out_y = conv.forward(&y, Mode::Eval);
        for i in 0..out_combo.len() {
            let expect = a * out_x.data()[i] + b * out_y.data()[i];
            prop_assert!((out_combo.data()[i] - expect).abs() < 1e-3,
                "linearity violated at {i}: {} vs {}", out_combo.data()[i], expect);
        }
    }

    /// Stride-1 valid convolution is shift-equivariant: shifting the input
    /// by k shifts the output by k.
    #[test]
    fn conv_valid_is_shift_equivariant(xs in signal(20), shift in 1usize..4) {
        let mut r = rng(2);
        let mut conv = Conv1d::with_options(&mut r, 1, 1, 3, Padding::Valid, 1, 1, false);
        let x = Tensor::from_vec(xs.clone(), &[1, 1, 20]);
        let mut shifted = vec![0.0f32; 20 + shift];
        shifted[shift..].copy_from_slice(&xs);
        let xs_shift = Tensor::from_vec(shifted, &[1, 1, 20 + shift]);
        let out = conv.forward(&x, Mode::Eval);
        let out_shift = conv.forward(&xs_shift, Mode::Eval);
        // out_shift[shift + i] == out[i]
        for i in 0..out.len() {
            prop_assert!((out_shift.data()[shift + i] - out.data()[i]).abs() < 1e-4);
        }
    }

    /// Softmax is invariant to constant shifts of the logits.
    #[test]
    fn softmax_shift_invariant(xs in signal(6), c in -50.0f32..50.0) {
        let x = Tensor::from_vec(xs.clone(), &[1, 6]);
        let x_shift = Tensor::from_vec(xs.iter().map(|v| v + c).collect(), &[1, 6]);
        let p = softmax_rows(&x);
        let q = softmax_rows(&x_shift);
        for (a, b) in p.data().iter().zip(q.data()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    /// GAP equals AvgPool with window = full length.
    #[test]
    fn gap_equals_full_avgpool(xs in signal(16)) {
        let x = Tensor::from_vec(xs, &[1, 1, 16]);
        let mut gap = GlobalAvgPool1d::default();
        let mut ap = AvgPool1d::new(16);
        let g = gap.forward(&x, Mode::Eval);
        let a = ap.forward(&x, Mode::Eval);
        prop_assert!((g.data()[0] - a.data()[0]).abs() < 1e-5);
    }

    /// Sigmoid output is in (0,1) and monotone.
    #[test]
    fn sigmoid_is_bounded_and_monotone(xs in signal(8)) {
        let mut sig = Sigmoid::default();
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let y = sig.forward(&Tensor::from_vec(sorted, &[8]), Mode::Eval);
        prop_assert!(y.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        prop_assert!(y.data().windows(2).all(|w| w[0] <= w[1] + 1e-7));
    }

    /// Cross-entropy is minimized by the true class: pushing the true logit
    /// up never increases the loss.
    #[test]
    fn cross_entropy_decreases_with_true_logit(xs in signal(4), delta in 0.1f32..5.0) {
        let x = Tensor::from_vec(xs.clone(), &[1, 4]);
        let (l1, _) = cross_entropy(&x, &[2]);
        let mut boosted = xs.clone();
        boosted[2] += delta;
        let (l2, _) = cross_entropy(&Tensor::from_vec(boosted, &[1, 4]), &[2]);
        prop_assert!(l2 <= l1 + 1e-6);
    }

    /// BCE-with-logits gradient always points from prediction toward target.
    #[test]
    fn bce_gradient_sign(logit in -10.0f32..10.0, target in 0.0f32..1.0) {
        let x = Tensor::from_slice(&[logit]);
        let t = Tensor::from_slice(&[target]);
        let (_, g) = bce_with_logits(&x, &t);
        let p = nilm_tensor::activation::sigmoid(logit);
        prop_assert!((g.data()[0] - (p - target)).abs() < 1e-5);
    }

    /// Conv output length formulas are consistent with actual output shapes.
    #[test]
    fn conv_out_len_matches_forward(
        len in 8usize..40,
        k in 1usize..6,
        stride in 1usize..3,
        dilation in 1usize..3,
    ) {
        prop_assume!((k - 1) * dilation + 1 <= len);
        let mut r = rng(3);
        let mut conv = Conv1d::with_options(&mut r, 1, 1, k, Padding::Valid, stride, dilation, true);
        let x = Tensor::zeros(&[1, 1, len]);
        let y = conv.forward(&x, Mode::Eval);
        prop_assert_eq!(y.dims3().2, conv.out_len(len));
    }

    /// Same-padding convs preserve length for every stride-1 configuration.
    #[test]
    fn same_padding_preserves_length(len in 4usize..64, k in 1usize..26) {
        let mut r = rng(4);
        let conv = Conv1d::new(&mut r, 1, 1, k, Padding::Same);
        prop_assert_eq!(conv.out_len(len), len);
    }
}
