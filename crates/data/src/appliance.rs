//! Appliance signature models.
//!
//! Each appliance kind generates realistic single-activation power profiles
//! at a 1-minute base resolution. The shapes follow the qualitative
//! descriptions used across the NILM literature (and the power levels of
//! Table I in the paper): kettles are short rectangular spikes, dishwashers
//! are long multi-phase cycles with two heating plateaus, EV charging is a
//! multi-hour constant block, and so on.

use rand::Rng;

/// The appliances simulated in this workspace (superset of Table I).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ApplianceKind {
    /// Electric kettle: ~2 kW for a few minutes, several times a day.
    Kettle,
    /// Microwave oven: ~1.2 kW bursts of a few minutes.
    Microwave,
    /// Dishwasher: 1.5–2.5 h cycle with two heating plateaus.
    Dishwasher,
    /// Washing machine: heating phase then low-power drum with spin spikes.
    WashingMachine,
    /// Electric shower: very high power (~8 kW) for minutes.
    Shower,
    /// Electric-vehicle charger: hours of multi-kW charging.
    ElectricVehicle,
    /// Fridge/freezer: always-on background compressor cycling (not a
    /// localization target; contributes to the noise term v(t)).
    Fridge,
}

impl ApplianceKind {
    /// Short lowercase name used in CSV output and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            ApplianceKind::Kettle => "kettle",
            ApplianceKind::Microwave => "microwave",
            ApplianceKind::Dishwasher => "dishwasher",
            ApplianceKind::WashingMachine => "washer",
            ApplianceKind::Shower => "shower",
            ApplianceKind::ElectricVehicle => "ev",
            ApplianceKind::Fridge => "fridge",
        }
    }

    /// Parses [`Self::name`] back into a kind.
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "kettle" => ApplianceKind::Kettle,
            "microwave" => ApplianceKind::Microwave,
            "dishwasher" => ApplianceKind::Dishwasher,
            "washer" | "washing_machine" => ApplianceKind::WashingMachine,
            "shower" => ApplianceKind::Shower,
            "ev" | "electric_vehicle" => ApplianceKind::ElectricVehicle,
            "fridge" => ApplianceKind::Fridge,
            _ => return None,
        })
    }

    /// Mean number of activations per day when the appliance is owned.
    pub fn activations_per_day(self) -> f64 {
        match self {
            ApplianceKind::Kettle => 4.0,
            ApplianceKind::Microwave => 3.0,
            ApplianceKind::Dishwasher => 0.7,
            ApplianceKind::WashingMachine => 0.6,
            ApplianceKind::Shower => 1.5,
            ApplianceKind::ElectricVehicle => 0.5,
            ApplianceKind::Fridge => 0.0, // continuous; handled separately
        }
    }

    /// Relative probability of an activation starting in each hour of the
    /// day (unnormalized 24-element weights).
    pub fn hour_weights(self) -> [f32; 24] {
        match self {
            // Morning and evening peaks for kitchen appliances.
            ApplianceKind::Kettle | ApplianceKind::Microwave => [
                0.2, 0.1, 0.1, 0.1, 0.3, 1.0, 3.0, 4.0, 3.0, 1.5, 1.0, 1.5, 2.0, 1.5, 1.0, 1.0,
                1.5, 2.5, 3.5, 3.0, 2.0, 1.5, 1.0, 0.5,
            ],
            // Dishwasher after meals, some overnight off-peak runs.
            ApplianceKind::Dishwasher => [
                1.0, 0.5, 0.3, 0.2, 0.2, 0.3, 0.5, 1.0, 2.0, 1.5, 1.0, 1.0, 2.0, 2.0, 1.0, 0.8,
                1.0, 1.5, 2.5, 3.5, 3.0, 2.5, 2.0, 1.5,
            ],
            ApplianceKind::WashingMachine => [
                0.3, 0.2, 0.2, 0.2, 0.3, 0.5, 1.0, 2.5, 3.0, 3.0, 2.5, 2.0, 1.5, 1.5, 1.5, 1.5,
                1.5, 2.0, 2.0, 1.5, 1.0, 0.8, 0.5, 0.3,
            ],
            ApplianceKind::Shower => [
                0.2, 0.1, 0.1, 0.2, 0.5, 1.5, 4.0, 5.0, 3.0, 1.5, 1.0, 0.8, 0.8, 0.8, 0.8, 1.0,
                1.2, 1.5, 2.5, 3.0, 2.5, 2.0, 1.0, 0.5,
            ],
            // EV charging dominated by evening plug-in and off-peak tariffs.
            ApplianceKind::ElectricVehicle => [
                2.0, 2.5, 2.5, 2.0, 1.0, 0.5, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.3, 0.5,
                1.0, 2.0, 3.5, 4.0, 3.5, 3.0, 2.5, 2.0,
            ],
            ApplianceKind::Fridge => [1.0; 24],
        }
    }

    /// Ownership probability used by the possession-only survey datasets.
    pub fn ownership_probability(self) -> f64 {
        match self {
            ApplianceKind::Kettle => 0.95,
            ApplianceKind::Microwave => 0.9,
            ApplianceKind::Dishwasher => 0.55,
            ApplianceKind::WashingMachine => 0.9,
            ApplianceKind::Shower => 0.45,
            ApplianceKind::ElectricVehicle => 0.35,
            ApplianceKind::Fridge => 1.0,
        }
    }

    /// Generates one activation profile at 1-minute resolution (Watts).
    pub fn signature(self, rng: &mut impl Rng) -> Vec<f32> {
        match self {
            ApplianceKind::Kettle => {
                let mins = rng.random_range(2..=4);
                let power = rng.random_range(1800.0..2400.0);
                vec![power; mins]
            }
            ApplianceKind::Microwave => {
                let mins = rng.random_range(1..=8);
                let power: f32 = rng.random_range(900.0..1500.0);
                // Duty cycling at lower heat settings: some minutes ~40%.
                (0..mins).map(|_| if rng.random_bool(0.25) { power * 0.4 } else { power }).collect()
            }
            ApplianceKind::Dishwasher => {
                let heat: f32 = rng.random_range(1800.0..2200.0);
                let low: f32 = rng.random_range(60.0..120.0);
                let mut sig = Vec::new();
                sig.extend(std::iter::repeat_n(low, rng.random_range(5..12))); // fill
                sig.extend(std::iter::repeat_n(heat, rng.random_range(15..25))); // heat wash
                sig.extend(std::iter::repeat_n(low * 1.5, rng.random_range(20..35))); // wash
                sig.extend(std::iter::repeat_n(heat, rng.random_range(10..20))); // heat rinse
                sig.extend(std::iter::repeat_n(low, rng.random_range(15..30))); // dry
                sig
            }
            ApplianceKind::WashingMachine => {
                let heat: f32 = rng.random_range(1700.0..2100.0);
                let drum: f32 = rng.random_range(150.0..300.0);
                let spin: f32 = rng.random_range(500.0..800.0);
                let mut sig = Vec::new();
                sig.extend(std::iter::repeat_n(heat, rng.random_range(10..18))); // heating
                for _ in 0..rng.random_range(30..60) {
                    // agitation with motor spikes
                    sig.push(if rng.random_bool(0.2) { spin } else { drum });
                }
                sig.extend(std::iter::repeat_n(spin, rng.random_range(5..12))); // final spin
                sig
            }
            ApplianceKind::Shower => {
                let mins = rng.random_range(4..=12);
                let power = rng.random_range(7000.0..9000.0);
                vec![power; mins]
            }
            ApplianceKind::ElectricVehicle => {
                let mins = rng.random_range(90..420);
                let power: f32 = rng.random_range(3200.0..4200.0);
                let mut sig = vec![power; mins];
                // Taper at end of charge.
                let taper = (mins / 10).max(1);
                for (i, v) in sig[mins - taper..].iter_mut().enumerate() {
                    *v *= 1.0 - i as f32 / taper as f32 * 0.6;
                }
                sig
            }
            ApplianceKind::Fridge => {
                // One compressor cycle: ~15 min on.
                let mins = rng.random_range(10..=20);
                let power = rng.random_range(80.0..140.0);
                vec![power; mins]
            }
        }
    }

    /// All localization-target appliance kinds (everything except the fridge).
    pub fn targets() -> &'static [ApplianceKind] {
        &[
            ApplianceKind::Kettle,
            ApplianceKind::Microwave,
            ApplianceKind::Dishwasher,
            ApplianceKind::WashingMachine,
            ApplianceKind::Shower,
            ApplianceKind::ElectricVehicle,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn names_roundtrip() {
        for &k in ApplianceKind::targets() {
            assert_eq!(ApplianceKind::from_name(k.name()), Some(k));
        }
        assert_eq!(ApplianceKind::from_name("toaster"), None);
    }

    #[test]
    fn signatures_are_positive_and_bounded() {
        let mut r = rng();
        for &k in ApplianceKind::targets() {
            for _ in 0..20 {
                let sig = k.signature(&mut r);
                assert!(!sig.is_empty(), "{k:?} empty signature");
                assert!(sig.iter().all(|&v| v > 0.0 && v < 10_000.0), "{k:?} out of range");
            }
        }
    }

    #[test]
    fn kettle_is_short_and_strong() {
        let mut r = rng();
        for _ in 0..50 {
            let sig = ApplianceKind::Kettle.signature(&mut r);
            assert!(sig.len() <= 4);
            assert!(sig.iter().all(|&v| v >= 1800.0));
        }
    }

    #[test]
    fn dishwasher_has_two_heat_plateaus() {
        let mut r = rng();
        let sig = ApplianceKind::Dishwasher.signature(&mut r);
        // Count transitions into the >1500W region; should be exactly 2.
        let mut plateaus = 0;
        let mut in_heat = false;
        for &v in &sig {
            let hot = v > 1500.0;
            if hot && !in_heat {
                plateaus += 1;
            }
            in_heat = hot;
        }
        assert_eq!(plateaus, 2, "dishwasher should have two heating plateaus");
        assert!(sig.len() >= 65, "cycle too short: {}", sig.len());
    }

    #[test]
    fn ev_is_long() {
        let mut r = rng();
        for _ in 0..20 {
            let sig = ApplianceKind::ElectricVehicle.signature(&mut r);
            assert!(sig.len() >= 90);
        }
    }

    #[test]
    fn hour_weights_have_24_entries_and_are_positive() {
        for &k in ApplianceKind::targets() {
            let w = k.hour_weights();
            assert!(w.iter().all(|&x| x > 0.0));
        }
    }
}
