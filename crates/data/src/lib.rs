//! # nilm-data
//!
//! Synthetic smart-meter data: appliance signature models, a household
//! simulator following the additive aggregation model of the CamAL paper
//! (Eq. 1), dataset templates replicating Table I (UKDALE, REFIT, IDEAL,
//! EDF EV, EDF Weak), and the preprocessing pipeline of §V-B (resampling,
//! bounded forward-fill, thresholded status, 1/1000 scaling, non-overlapping
//! windows with NaN discard).
//!
//! The real datasets are private (EDF) or large (UKDALE/REFIT/IDEAL); this
//! crate is the documented substitution — see DESIGN.md §2.
//!
//! ## Example
//!
//! ```
//! use nilm_data::prelude::*;
//!
//! let scale = ScaleOverride {
//!     submetered_houses: Some(4),
//!     days_per_house: Some(2),
//!     ..Default::default()
//! };
//! let ds = generate_dataset(&refit(), scale, 42);
//! let case = prepare_case(&ds, ApplianceKind::Kettle, 128, &SplitConfig::default());
//! assert!(!case.train.is_empty());
//! ```

#![warn(missing_docs)]

pub mod appliance;
pub mod generator;
pub mod pipeline;
pub mod preprocess;
pub mod series;
pub mod templates;
pub mod windows;

/// Convenient glob import for dataset construction.
pub mod prelude {
    pub use crate::appliance::ApplianceKind;
    pub use crate::generator::{
        generate_fleet_scenario, generate_house, sample_ownership, FleetHousehold, House,
        SimConfig, BASE_STEP_S,
    };
    pub use crate::pipeline::{
        house_windows, prepare_case, prepare_possession_case, split_houses, CaseData, SplitConfig,
    };
    pub use crate::preprocess::{
        forward_fill, resample, slice_windows, status_from_power, Window, INPUT_SCALE,
    };
    pub use crate::series::TimeSeries;
    pub use crate::templates::{
        edf_ev, edf_weak, generate_dataset, ideal, refit, template, ukdale, ApplianceCase, Dataset,
        DatasetId, DatasetTemplate, ScaleOverride,
    };
    pub use crate::windows::{bootstrap, WindowSet};
}
