//! End-to-end pipeline from a simulated [`Dataset`] to train/val/test
//! [`WindowSet`]s for one appliance case, with house-level splits so that
//! evaluation always happens on unseen houses (paper §V-B).

use crate::appliance::ApplianceKind;
use crate::generator::House;
use crate::preprocess::{forward_fill, resample, slice_windows};
use crate::templates::{ApplianceCase, Dataset, DatasetId};
use crate::windows::WindowSet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// House-level split fractions (test and validation; the rest trains).
#[derive(Clone, Copy, Debug)]
pub struct SplitConfig {
    /// Fraction of houses held out for testing.
    pub test_frac: f64,
    /// Fraction of houses held out for validation.
    pub val_frac: f64,
    /// Split seed.
    pub seed: u64,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig { test_frac: 0.2, val_frac: 0.15, seed: 0xC0FFEE }
    }
}

/// The windows for one appliance case, split by house.
#[derive(Clone, Debug, Default)]
pub struct CaseData {
    /// Training windows.
    pub train: WindowSet,
    /// Validation windows (model selection for Algorithm 1).
    pub val: WindowSet,
    /// Test windows (unseen houses).
    pub test: WindowSet,
}

/// Converts one house into windows for `case` at the template's resolution.
///
/// When `possession_only` is true, per-timestep labels are withheld and the
/// windows carry the household ownership answer as their weak label
/// (paper §V-H "Possession Only Pipeline").
pub fn house_windows(
    house: &House,
    case: &ApplianceCase,
    step_s: u32,
    max_ffill_s: u32,
    window: usize,
    possession_only: bool,
) -> WindowSet {
    let agg = forward_fill(&resample(&house.aggregate, step_s), max_ffill_s);
    let sub_resampled;
    let submeter = if possession_only {
        None
    } else {
        match house.submeters.get(&case.kind) {
            Some(s) => {
                sub_resampled = resample(s, step_s);
                Some(&sub_resampled)
            }
            // Houses not owning the appliance: all-off ground truth.
            None => None,
        }
    };
    let windows = match (submeter, possession_only) {
        (Some(sub), _) => {
            slice_windows(&agg, Some(sub), case.on_threshold_w, window, house.id, false)
        }
        (None, true) => {
            slice_windows(&agg, None, case.on_threshold_w, window, house.id, house.owns(case.kind))
        }
        (None, false) => {
            // Submetered pipeline but the house lacks the appliance: the
            // ground truth is identically zero.
            let zeros = crate::series::TimeSeries::zeros(agg.len(), step_s);
            slice_windows(&agg, Some(&zeros), case.on_threshold_w, window, house.id, false)
        }
    };
    WindowSet::new(windows)
}

/// Splits house indices into (train, val, test) sets.
pub fn split_houses(n: usize, cfg: &SplitConfig) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    idx.shuffle(&mut rng);
    let n_test = ((n as f64) * cfg.test_frac).round().max(1.0) as usize;
    let n_val = ((n as f64) * cfg.val_frac).round().max(1.0) as usize;
    let n_test = n_test.min(n.saturating_sub(2));
    let n_val = n_val.min(n.saturating_sub(n_test + 1));
    let test = idx[..n_test].to_vec();
    let val = idx[n_test..n_test + n_val].to_vec();
    let train = idx[n_test + n_val..].to_vec();
    (train, val, test)
}

/// Builds the per-case train/val/test window sets from a generated dataset,
/// using submeter-derived weak labels (the Fig. 5 / Table III regime).
pub fn prepare_case(
    ds: &Dataset,
    kind: ApplianceKind,
    window: usize,
    split: &SplitConfig,
) -> CaseData {
    let case = ds
        .template
        .case(kind)
        .unwrap_or_else(|| panic!("{kind:?} is not a case of {:?}", ds.template.id));
    let (train_h, val_h, test_h) = if ds.template.id == DatasetId::UkDale {
        // Paper: houses 1,3,4 train; 2,5 split between val and test.
        // Our ids are 0-based.
        (vec![0, 2, 3], vec![1], vec![4])
    } else {
        split_houses(ds.houses.len(), split)
    };
    let collect = |ids: &[usize]| {
        let mut set = WindowSet::default();
        for &h in ids {
            if h < ds.houses.len() {
                set.extend(house_windows(
                    &ds.houses[h],
                    case,
                    ds.template.step_s,
                    ds.template.max_ffill_s,
                    window,
                    false,
                ));
            }
        }
        set
    };
    CaseData { train: collect(&train_h), val: collect(&val_h), test: collect(&test_h) }
}

/// Builds a possession-only training set from survey houses (weak label =
/// ownership) plus a submetered test set — the RQ4 regime (paper §V-H).
pub fn prepare_possession_case(
    ds: &Dataset,
    kind: ApplianceKind,
    window: usize,
    split: &SplitConfig,
) -> CaseData {
    let case = ds
        .template
        .case(kind)
        .unwrap_or_else(|| panic!("{kind:?} is not a case of {:?}", ds.template.id));
    // Survey houses: 70/10/20-style split at the household level.
    let (train_h, val_h, _test_h) = split_houses(ds.survey_houses.len(), split);
    let collect_survey = |ids: &[usize]| {
        let mut set = WindowSet::default();
        for &h in ids {
            set.extend(house_windows(
                &ds.survey_houses[h],
                case,
                ds.template.step_s,
                ds.template.max_ffill_s,
                window,
                true,
            ));
        }
        set
    };
    // All submetered houses serve as the ground-truth test bed.
    let mut test = WindowSet::default();
    for house in &ds.houses {
        test.extend(house_windows(
            house,
            case,
            ds.template.step_s,
            ds.template.max_ffill_s,
            window,
            false,
        ));
    }
    CaseData { train: collect_survey(&train_h), val: collect_survey(&val_h), test }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::{generate_dataset, refit, ScaleOverride};

    fn tiny_dataset() -> Dataset {
        let scale = ScaleOverride {
            submetered_houses: Some(6),
            possession_only_houses: Some(4),
            days_per_house: Some(2),
        };
        generate_dataset(&refit(), scale, 77)
    }

    #[test]
    fn split_houses_partitions_all() {
        let (tr, va, te) = split_houses(10, &SplitConfig::default());
        let mut all: Vec<usize> = tr.iter().chain(&va).chain(&te).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        assert!(!te.is_empty() && !va.is_empty() && !tr.is_empty());
    }

    #[test]
    fn prepare_case_separates_houses() {
        let ds = tiny_dataset();
        let cd = prepare_case(&ds, ApplianceKind::Kettle, 64, &SplitConfig::default());
        let train_houses: std::collections::BTreeSet<usize> =
            cd.train.windows.iter().map(|w| w.house_id).collect();
        let test_houses: std::collections::BTreeSet<usize> =
            cd.test.windows.iter().map(|w| w.house_id).collect();
        assert!(train_houses.is_disjoint(&test_houses), "train/test houses overlap");
        assert!(!cd.train.is_empty());
        assert!(!cd.test.is_empty());
    }

    #[test]
    fn prepare_case_windows_have_strong_labels() {
        let ds = tiny_dataset();
        let cd = prepare_case(&ds, ApplianceKind::Kettle, 64, &SplitConfig::default());
        for w in &cd.train.windows {
            assert_eq!(w.status.len(), 64);
        }
    }

    #[test]
    fn possession_case_train_has_no_strong_labels() {
        let ds = tiny_dataset();
        let cd = prepare_possession_case(&ds, ApplianceKind::Kettle, 64, &SplitConfig::default());
        assert!(!cd.train.is_empty());
        for w in &cd.train.windows {
            assert!(w.status.is_empty(), "possession windows must not carry strong labels");
        }
        // Test set still has ground truth for evaluation.
        for w in &cd.test.windows {
            assert_eq!(w.status.len(), 64);
        }
    }

    #[test]
    fn possession_weak_labels_match_ownership() {
        let ds = tiny_dataset();
        let cd = prepare_possession_case(&ds, ApplianceKind::Kettle, 64, &SplitConfig::default());
        for w in &cd.train.windows {
            let owns = ds
                .survey_houses
                .iter()
                .find(|h| h.id == w.house_id)
                .unwrap()
                .owns(ApplianceKind::Kettle);
            assert_eq!(w.weak_label == 1, owns);
        }
    }

    #[test]
    #[should_panic(expected = "not a case")]
    fn prepare_case_rejects_unknown_appliance() {
        let ds = tiny_dataset();
        let _ = prepare_case(&ds, ApplianceKind::ElectricVehicle, 64, &SplitConfig::default());
    }
}
