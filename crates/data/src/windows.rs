//! Window collections: balancing, batching into tensors, and label-budget
//! subsampling for the label-efficiency experiments (Fig. 1 / Fig. 5).

use crate::preprocess::Window;
use nilm_tensor::tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::RngExt;

/// A set of preprocessed windows sharing one window length.
#[derive(Clone, Debug, Default)]
pub struct WindowSet {
    /// The windows.
    pub windows: Vec<Window>,
}

impl WindowSet {
    /// Wraps a vector of windows, asserting consistent lengths.
    pub fn new(windows: Vec<Window>) -> Self {
        if let Some(first) = windows.first() {
            let w = first.len();
            assert!(windows.iter().all(|x| x.len() == w), "inconsistent window lengths");
        }
        WindowSet { windows }
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when the set holds no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Window length (0 when empty).
    pub fn window_len(&self) -> usize {
        self.windows.first().map_or(0, Window::len)
    }

    /// Count of windows with weak label 1.
    pub fn positives(&self) -> usize {
        self.windows.iter().filter(|w| w.weak_label == 1).count()
    }

    /// Appends all windows from `other`.
    pub fn extend(&mut self, other: WindowSet) {
        if !self.is_empty() && !other.is_empty() {
            assert_eq!(self.window_len(), other.window_len(), "window length mismatch");
        }
        self.windows.extend(other.windows);
    }

    /// Random undersampling of the majority class so that positives and
    /// negatives are equal (paper §V-H balances the training set this way).
    /// Returns a new set; order is shuffled.
    pub fn balance_undersample(&self, rng: &mut StdRng) -> WindowSet {
        let (mut pos, mut neg): (Vec<_>, Vec<_>) =
            self.windows.iter().cloned().partition(|w| w.weak_label == 1);
        pos.shuffle(rng);
        neg.shuffle(rng);
        let k = pos.len().min(neg.len());
        let mut out: Vec<Window> = pos.into_iter().take(k).chain(neg.into_iter().take(k)).collect();
        out.shuffle(rng);
        WindowSet { windows: out }
    }

    /// Keeps at most `n` windows, chosen uniformly at random — this is the
    /// label-budget knob of Fig. 5 (each kept window costs 1 weak label, or
    /// `window_len()` strong labels for the strongly supervised baselines).
    pub fn subsample(&self, n: usize, rng: &mut StdRng) -> WindowSet {
        if n >= self.len() {
            return self.clone();
        }
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        idx.truncate(n);
        WindowSet { windows: idx.into_iter().map(|i| self.windows[i].clone()).collect() }
    }

    /// Shuffled index order for epoch iteration.
    pub fn shuffled_indices(&self, rng: &mut StdRng) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        idx
    }

    /// Builds the `[batch, 1, w]` input tensor for the given window indices.
    pub fn batch_inputs(&self, indices: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(&[0]);
        self.batch_inputs_into(indices, &mut out);
        out
    }

    /// Like [`Self::batch_inputs`], but fills a caller-owned scratch tensor
    /// so per-batch loops (every epoch of every training run) reuse one
    /// allocation instead of building a fresh buffer per chunk.
    pub fn batch_inputs_into(&self, indices: &[usize], out: &mut Tensor) {
        let w = self.window_len();
        out.resize(&[indices.len(), 1, w]);
        for (dst, &i) in out.data_mut().chunks_mut(w.max(1)).zip(indices) {
            dst.copy_from_slice(&self.windows[i].input);
        }
    }

    /// Weak labels (one per window) for the given indices.
    pub fn batch_weak_labels(&self, indices: &[usize]) -> Vec<usize> {
        let mut out = Vec::new();
        self.batch_weak_labels_into(indices, &mut out);
        out
    }

    /// Like [`Self::batch_weak_labels`], but reuses a caller-owned buffer.
    pub fn batch_weak_labels_into(&self, indices: &[usize], out: &mut Vec<usize>) {
        out.clear();
        out.extend(indices.iter().map(|&i| self.windows[i].weak_label as usize));
    }

    /// Strong labels as a `[batch, 1, w]` tensor of 0.0/1.0 targets.
    /// Panics if any selected window lacks per-timestep labels.
    pub fn batch_strong_labels(&self, indices: &[usize]) -> Tensor {
        let w = self.window_len();
        let mut data = Vec::with_capacity(indices.len() * w);
        for &i in indices {
            let st = &self.windows[i].status;
            assert_eq!(st.len(), w, "window {i} has no strong labels");
            data.extend(st.iter().map(|&b| b as f32));
        }
        Tensor::from_vec(data, &[indices.len(), 1, w])
    }

    /// Weak labels broadcast as `[batch, 1]` float targets (for MIL heads).
    pub fn batch_weak_targets(&self, indices: &[usize]) -> Tensor {
        let data: Vec<f32> = indices.iter().map(|&i| self.windows[i].weak_label as f32).collect();
        Tensor::from_vec(data, &[indices.len(), 1])
    }

    /// Total number of labels this set represents under a labeling regime:
    /// weak = 1 per window; strong = window_len per window.
    pub fn label_count(&self, strong: bool) -> usize {
        if strong {
            self.len() * self.window_len()
        } else {
            self.len()
        }
    }

    /// Splits off a validation fraction (last `frac` after a shuffle).
    pub fn split_train_val(&self, frac_val: f64, rng: &mut StdRng) -> (WindowSet, WindowSet) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        let n_val = ((self.len() as f64) * frac_val).round() as usize;
        let n_val = n_val.min(self.len());
        let (val_idx, train_idx) = idx.split_at(n_val);
        let grab = |ids: &[usize]| WindowSet {
            windows: ids.iter().map(|&i| self.windows[i].clone()).collect(),
        };
        (grab(train_idx), grab(val_idx))
    }
}

/// Draws a bootstrap resample of the same size (used for ensemble trials'
/// data diversity when the training set is small).
pub fn bootstrap(set: &WindowSet, rng: &mut StdRng) -> WindowSet {
    if set.is_empty() {
        return set.clone();
    }
    let n = set.len();
    let windows = (0..n).map(|_| set.windows[rng.random_range(0..n)].clone()).collect();
    WindowSet { windows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn mk_window(weak: u8, house: usize, w: usize) -> Window {
        Window {
            input: vec![0.1; w],
            aggregate_w: vec![100.0; w],
            status: vec![weak; w],
            appliance_w: vec![0.0; w],
            weak_label: weak,
            house_id: house,
        }
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    fn mixed_set(pos: usize, neg: usize) -> WindowSet {
        let mut v = Vec::new();
        for i in 0..pos {
            v.push(mk_window(1, i, 8));
        }
        for i in 0..neg {
            v.push(mk_window(0, pos + i, 8));
        }
        WindowSet::new(v)
    }

    #[test]
    fn balance_equalizes_classes() {
        let set = mixed_set(3, 17);
        let bal = set.balance_undersample(&mut rng());
        assert_eq!(bal.len(), 6);
        assert_eq!(bal.positives(), 3);
    }

    #[test]
    fn subsample_caps_size() {
        let set = mixed_set(10, 10);
        let sub = set.subsample(5, &mut rng());
        assert_eq!(sub.len(), 5);
        let all = set.subsample(100, &mut rng());
        assert_eq!(all.len(), 20);
    }

    #[test]
    fn batch_tensors_have_expected_shapes() {
        let set = mixed_set(2, 2);
        let idx = [0usize, 2, 3];
        assert_eq!(set.batch_inputs(&idx).shape(), &[3, 1, 8]);
        assert_eq!(set.batch_strong_labels(&idx).shape(), &[3, 1, 8]);
        assert_eq!(set.batch_weak_targets(&idx).shape(), &[3, 1]);
        assert_eq!(set.batch_weak_labels(&idx), vec![1, 0, 0]);
    }

    #[test]
    fn label_count_regimes() {
        let set = mixed_set(4, 0);
        assert_eq!(set.label_count(false), 4);
        assert_eq!(set.label_count(true), 32);
    }

    #[test]
    fn train_val_split_partitions() {
        let set = mixed_set(10, 10);
        let (tr, va) = set.split_train_val(0.25, &mut rng());
        assert_eq!(tr.len() + va.len(), 20);
        assert_eq!(va.len(), 5);
    }

    #[test]
    fn bootstrap_preserves_size() {
        let set = mixed_set(5, 5);
        let bs = bootstrap(&set, &mut rng());
        assert_eq!(bs.len(), 10);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn rejects_mixed_lengths() {
        let _ = WindowSet::new(vec![mk_window(0, 0, 4), mk_window(0, 1, 8)]);
    }
}
