//! Preprocessing pipeline (paper §V-B): resample by averaging, forward-fill
//! bounded gaps, derive ON/OFF status from the Table-I threshold, scale by
//! 1/1000, and slice into non-overlapping windows, discarding windows that
//! still contain missing values.

use crate::series::TimeSeries;

/// Resamples `series` to `target_step_s` by averaging the non-missing
/// samples inside each bucket. Buckets with no valid samples become NaN.
/// `target_step_s` must be a multiple of the source step.
pub fn resample(series: &TimeSeries, target_step_s: u32) -> TimeSeries {
    assert!(target_step_s >= series.step_s, "can only downsample");
    assert_eq!(
        target_step_s % series.step_s,
        0,
        "target step {target_step_s} not a multiple of source step {}",
        series.step_s
    );
    let ratio = (target_step_s / series.step_s) as usize;
    if ratio == 1 {
        return series.clone();
    }
    let n_out = series.len() / ratio;
    let mut out = Vec::with_capacity(n_out);
    for b in 0..n_out {
        let bucket = &series.values[b * ratio..(b + 1) * ratio];
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for &v in bucket {
            if !v.is_nan() {
                sum += v as f64;
                count += 1;
            }
        }
        out.push(if count == 0 { f32::NAN } else { (sum / count as f64) as f32 });
    }
    TimeSeries::new(out, target_step_s)
}

/// Forward-fills NaN runs of at most `max_gap_s` worth of samples with the
/// last valid value. Longer runs (and leading NaNs) are left missing.
pub fn forward_fill(series: &TimeSeries, max_gap_s: u32) -> TimeSeries {
    let max_gap = (max_gap_s / series.step_s) as usize;
    let mut out = series.values.clone();
    let mut last_valid: Option<f32> = None;
    let mut i = 0usize;
    while i < out.len() {
        if out[i].is_nan() {
            // Measure the run.
            let start = i;
            while i < out.len() && out[i].is_nan() {
                i += 1;
            }
            let run = i - start;
            if run <= max_gap {
                if let Some(v) = last_valid {
                    for o in &mut out[start..start + run] {
                        *o = v;
                    }
                }
            }
        } else {
            last_valid = Some(out[i]);
            i += 1;
        }
    }
    TimeSeries::new(out, series.step_s)
}

/// Ground-truth appliance status: `1` where the submeter power is at or
/// above the ON threshold (Table I), else `0`. NaN maps to `0`.
pub fn status_from_power(submeter: &TimeSeries, on_threshold_w: f32) -> Vec<u8> {
    submeter
        .values
        .iter()
        .map(|&v| if !v.is_nan() && v >= on_threshold_w { 1 } else { 0 })
        .collect()
}

/// Input scaling used for training stability (paper §V-B): Watts / 1000.
pub const INPUT_SCALE: f32 = 1.0 / 1000.0;

/// One preprocessed, NaN-free window ready for model consumption.
#[derive(Clone, Debug)]
pub struct Window {
    /// Scaled aggregate input (Watts / 1000), length `w`.
    pub input: Vec<f32>,
    /// Raw aggregate in Watts (for power clipping and energy metrics).
    pub aggregate_w: Vec<f32>,
    /// Per-timestep ground-truth status of the target appliance (empty for
    /// possession-only houses).
    pub status: Vec<u8>,
    /// Ground-truth appliance power in Watts (empty for possession-only).
    pub appliance_w: Vec<f32>,
    /// Weak label: 1 iff the appliance was ON anywhere in the window.
    pub weak_label: u8,
    /// Source house id.
    pub house_id: usize,
}

impl Window {
    /// Window length.
    pub fn len(&self) -> usize {
        self.input.len()
    }

    /// True when empty (never produced by the slicer).
    pub fn is_empty(&self) -> bool {
        self.input.is_empty()
    }
}

/// Start indices of the non-overlapping length-`w` windows of `aggregate`
/// that contain no missing values — the single source of the window
/// validity rule, shared by training ([`slice_windows`]) and the streaming
/// service (`camal::stream`). The tail shorter than `w` is excluded.
pub fn valid_window_starts(aggregate: &TimeSeries, w: usize) -> Vec<usize> {
    assert!(w > 0);
    (0..aggregate.len() / w)
        .map(|wi| wi * w)
        .filter(|&start| !aggregate.values[start..start + w].iter().any(|v| v.is_nan()))
        .collect()
}

/// Slices an aggregate/submeter pair into non-overlapping windows of length
/// `w`, dropping any window where the aggregate still contains NaN.
///
/// `submeter` may be `None` for possession-only houses; in that case the
/// per-timestep fields are empty and `weak_label` is `possession as u8`
/// (the label is the household-level ownership answer).
pub fn slice_windows(
    aggregate: &TimeSeries,
    submeter: Option<&TimeSeries>,
    on_threshold_w: f32,
    w: usize,
    house_id: usize,
    possession: bool,
) -> Vec<Window> {
    if let Some(s) = submeter {
        assert_eq!(s.step_s, aggregate.step_s, "submeter step mismatch");
    }
    let starts = valid_window_starts(aggregate, w);
    let mut out = Vec::with_capacity(starts.len());
    for start in starts {
        let range = start..start + w;
        let agg = &aggregate.values[range.clone()];
        let (status, appliance_w, weak) = match submeter {
            Some(s) => {
                let sub = &s.values[range.clone()];
                let status: Vec<u8> = sub
                    .iter()
                    .map(|&v| if !v.is_nan() && v >= on_threshold_w { 1 } else { 0 })
                    .collect();
                let weak = status.iter().any(|&b| b == 1) as u8;
                (status, sub.to_vec(), weak)
            }
            None => (Vec::new(), Vec::new(), possession as u8),
        };
        out.push(Window {
            input: agg.iter().map(|&v| v * INPUT_SCALE).collect(),
            aggregate_w: agg.to_vec(),
            status,
            appliance_w,
            weak_label: weak,
            house_id,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resample_averages_buckets() {
        let s = TimeSeries::new(vec![1.0, 3.0, 5.0, 7.0], 60);
        let r = resample(&s, 120);
        assert_eq!(r.values, vec![2.0, 6.0]);
        assert_eq!(r.step_s, 120);
    }

    #[test]
    fn resample_ignores_nan_within_bucket() {
        let s = TimeSeries::new(vec![2.0, f32::NAN, f32::NAN, f32::NAN], 60);
        let r = resample(&s, 120);
        assert_eq!(r.values[0], 2.0);
        assert!(r.values[1].is_nan());
    }

    #[test]
    fn resample_preserves_overall_mean_when_clean() {
        let s = TimeSeries::new((0..120).map(|i| i as f32).collect(), 60);
        let r = resample(&s, 600);
        assert!((r.mean_ignore_nan() - s.mean_ignore_nan()).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn resample_rejects_non_multiple() {
        let s = TimeSeries::new(vec![0.0; 10], 60);
        let _ = resample(&s, 90);
    }

    #[test]
    fn forward_fill_respects_max_gap() {
        let s = TimeSeries::new(
            vec![1.0, f32::NAN, f32::NAN, 4.0, f32::NAN, f32::NAN, f32::NAN, 8.0],
            60,
        );
        let f = forward_fill(&s, 120); // max 2 samples
        assert_eq!(&f.values[0..4], &[1.0, 1.0, 1.0, 4.0]);
        assert!(f.values[4].is_nan() && f.values[5].is_nan() && f.values[6].is_nan());
        assert_eq!(f.values[7], 8.0);
    }

    #[test]
    fn forward_fill_leaves_leading_nan() {
        let s = TimeSeries::new(vec![f32::NAN, 2.0], 60);
        let f = forward_fill(&s, 600);
        assert!(f.values[0].is_nan());
    }

    #[test]
    fn status_thresholding() {
        let s = TimeSeries::new(vec![0.0, 299.9, 300.0, 500.0, f32::NAN], 60);
        assert_eq!(status_from_power(&s, 300.0), vec![0, 0, 1, 1, 0]);
    }

    #[test]
    fn valid_window_starts_skip_nan_and_tail() {
        let mut vals: Vec<f32> = (0..14).map(|i| i as f32).collect();
        vals[5] = f32::NAN;
        let agg = TimeSeries::new(vals, 60);
        // Windows of 4: [0..4] ok, [4..8] has NaN, [8..12] ok, tail dropped.
        assert_eq!(valid_window_starts(&agg, 4), vec![0, 8]);
    }

    #[test]
    fn windows_are_non_overlapping_and_scaled() {
        let agg = TimeSeries::new((0..10).map(|i| 1000.0 * i as f32).collect(), 60);
        let sub = TimeSeries::new(vec![0.0; 10], 60);
        let ws = slice_windows(&agg, Some(&sub), 300.0, 4, 7, true);
        assert_eq!(ws.len(), 2); // 10 / 4 = 2, tail dropped
        for (got, want) in ws[0].input.iter().zip([0.0, 1.0, 2.0, 3.0]) {
            assert!((got - want).abs() < 1e-4);
        }
        for (got, want) in ws[1].input.iter().zip([4.0, 5.0, 6.0, 7.0]) {
            assert!((got - want).abs() < 1e-4);
        }
        assert_eq!(ws[0].house_id, 7);
    }

    #[test]
    fn windows_with_nan_are_discarded() {
        let mut vals: Vec<f32> = (0..8).map(|i| i as f32).collect();
        vals[1] = f32::NAN;
        let agg = TimeSeries::new(vals, 60);
        let ws = slice_windows(&agg, None, 300.0, 4, 0, false);
        assert_eq!(ws.len(), 1); // first window dropped
        assert_eq!(ws[0].aggregate_w, vec![4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn weak_label_reflects_any_activation() {
        let agg = TimeSeries::new(vec![100.0; 6], 60);
        let sub = TimeSeries::new(vec![0.0, 0.0, 400.0, 0.0, 0.0, 0.0], 60);
        let ws = slice_windows(&agg, Some(&sub), 300.0, 3, 0, false);
        assert_eq!(ws[0].weak_label, 1);
        assert_eq!(ws[1].weak_label, 0);
    }

    #[test]
    fn possession_only_windows_have_household_label() {
        let agg = TimeSeries::new(vec![100.0; 6], 60);
        let ws = slice_windows(&agg, None, 300.0, 3, 0, true);
        assert!(ws.iter().all(|w| w.weak_label == 1 && w.status.is_empty()));
        let ws0 = slice_windows(&agg, None, 300.0, 3, 0, false);
        assert!(ws0.iter().all(|w| w.weak_label == 0));
    }
}
