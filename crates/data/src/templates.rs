//! Dataset templates replicating Table I of the paper: UKDALE, REFIT, IDEAL
//! (39 submetered + 216 possession-only), EDF EV, and the survey-only
//! EDF Weak. Each template fixes the house count, resampling interval ∆t,
//! the forward-fill bound, and per-appliance ON-threshold / average power.
//!
//! The real datasets are private or large; the templates drive the
//! [`crate::generator`] simulator to produce synthetic datasets with the same
//! shape (see DESIGN.md §2 for the substitution rationale).

use crate::appliance::ApplianceKind;
use crate::generator::{generate_house, sample_ownership, House, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One appliance row of Table I: the localization case for a dataset.
#[derive(Clone, Copy, Debug)]
pub struct ApplianceCase {
    /// Target appliance.
    pub kind: ApplianceKind,
    /// "ON" threshold in Watts used to derive ground-truth status s(t).
    pub on_threshold_w: f32,
    /// Average running power P_a in Watts, used by the binary→power step.
    pub avg_power_w: f32,
}

/// Identifier for the five datasets of the paper.
///
/// Ordered (`Ord`) so it can key the sorted maps of `camal`'s model
/// registry; the derived order is the declaration order below, which is the
/// Table I row order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DatasetId {
    /// UK-DALE: 5 houses, small appliances.
    UkDale,
    /// REFIT: 20 houses, four appliance cases.
    Refit,
    /// IDEAL: 39 submetered houses + 216 possession-only houses.
    Ideal,
    /// EDF EV: 24 houses with EV-charger submeters at 30-minute sampling.
    EdfEv,
    /// EDF Weak: 558 houses, possession labels only.
    EdfWeak,
}

impl DatasetId {
    /// Lowercase name used in CSVs and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::UkDale => "ukdale",
            DatasetId::Refit => "refit",
            DatasetId::Ideal => "ideal",
            DatasetId::EdfEv => "edf_ev",
            DatasetId::EdfWeak => "edf_weak",
        }
    }

    /// Parses [`Self::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "ukdale" => DatasetId::UkDale,
            "refit" => DatasetId::Refit,
            "ideal" => DatasetId::Ideal,
            "edf_ev" => DatasetId::EdfEv,
            "edf_weak" => DatasetId::EdfWeak,
            _ => return None,
        })
    }

    /// All five dataset identifiers, in Table I row order.
    pub fn all() -> [DatasetId; 5] {
        [
            DatasetId::UkDale,
            DatasetId::Refit,
            DatasetId::Ideal,
            DatasetId::EdfEv,
            DatasetId::EdfWeak,
        ]
    }
}

/// A dataset template: everything Table I specifies, plus the simulator
/// scale knobs used to synthesize it.
#[derive(Clone, Debug)]
pub struct DatasetTemplate {
    /// Which dataset this mirrors.
    pub id: DatasetId,
    /// Houses with submeter ground truth.
    pub submetered_houses: usize,
    /// Additional houses with possession labels only (IDEAL's 216, all of
    /// EDF Weak).
    pub possession_only_houses: usize,
    /// Resampling interval ∆t in seconds.
    pub step_s: u32,
    /// Maximum forward-fill gap in seconds (Table I "Max. ffill").
    pub max_ffill_s: u32,
    /// The appliance cases evaluated on this dataset.
    pub cases: Vec<ApplianceCase>,
    /// Days simulated per house (scaled-down stand-in for recording length).
    pub days_per_house: usize,
}

impl DatasetTemplate {
    /// Looks up a case by appliance kind.
    pub fn case(&self, kind: ApplianceKind) -> Option<&ApplianceCase> {
        self.cases.iter().find(|c| c.kind == kind)
    }

    /// Total number of houses (submetered + possession-only).
    pub fn total_houses(&self) -> usize {
        self.submetered_houses + self.possession_only_houses
    }
}

fn case(kind: ApplianceKind, on_threshold_w: f32, avg_power_w: f32) -> ApplianceCase {
    ApplianceCase { kind, on_threshold_w, avg_power_w }
}

/// The UKDALE template (Table I row 1): 5 houses, 3-min ffill,
/// dishwasher/microwave/kettle.
pub fn ukdale() -> DatasetTemplate {
    DatasetTemplate {
        id: DatasetId::UkDale,
        submetered_houses: 5,
        possession_only_houses: 0,
        step_s: 60,
        max_ffill_s: 3 * 60,
        cases: vec![
            case(ApplianceKind::Dishwasher, 300.0, 800.0),
            case(ApplianceKind::Microwave, 200.0, 1000.0),
            case(ApplianceKind::Kettle, 500.0, 2000.0),
        ],
        days_per_house: 10,
    }
}

/// The REFIT template (Table I row 2): 20 houses, four cases.
pub fn refit() -> DatasetTemplate {
    DatasetTemplate {
        id: DatasetId::Refit,
        submetered_houses: 20,
        possession_only_houses: 0,
        step_s: 60,
        max_ffill_s: 3 * 60,
        cases: vec![
            case(ApplianceKind::Dishwasher, 300.0, 800.0),
            case(ApplianceKind::WashingMachine, 300.0, 500.0),
            case(ApplianceKind::Microwave, 200.0, 1000.0),
            case(ApplianceKind::Kettle, 500.0, 2000.0),
        ],
        days_per_house: 6,
    }
}

/// The IDEAL template (Table I row 3): 39 submetered houses plus 216
/// possession-only houses, 30-min ffill, ∆t = 10 minutes.
pub fn ideal() -> DatasetTemplate {
    DatasetTemplate {
        id: DatasetId::Ideal,
        submetered_houses: 39,
        possession_only_houses: 216,
        step_s: 600,
        max_ffill_s: 30 * 60,
        cases: vec![
            case(ApplianceKind::Dishwasher, 300.0, 800.0),
            case(ApplianceKind::WashingMachine, 300.0, 500.0),
            case(ApplianceKind::Shower, 1000.0, 8000.0),
        ],
        days_per_house: 20,
    }
}

/// The EDF EV template (Table I row 4): 24 houses, 30-minute readings,
/// 1h30 ffill, electric-vehicle charger.
pub fn edf_ev() -> DatasetTemplate {
    DatasetTemplate {
        id: DatasetId::EdfEv,
        submetered_houses: 24,
        possession_only_houses: 0,
        step_s: 1800,
        max_ffill_s: 90 * 60,
        cases: vec![case(ApplianceKind::ElectricVehicle, 1000.0, 4000.0)],
        days_per_house: 40,
    }
}

/// The EDF Weak template (Table I row 5): survey-only, 558 houses, EV
/// possession labels, no submeters.
pub fn edf_weak() -> DatasetTemplate {
    DatasetTemplate {
        id: DatasetId::EdfWeak,
        submetered_houses: 0,
        possession_only_houses: 558,
        step_s: 1800,
        max_ffill_s: 90 * 60,
        cases: vec![case(ApplianceKind::ElectricVehicle, 1000.0, 4000.0)],
        days_per_house: 40,
    }
}

/// Looks up a template by id.
pub fn template(id: DatasetId) -> DatasetTemplate {
    match id {
        DatasetId::UkDale => ukdale(),
        DatasetId::Refit => refit(),
        DatasetId::Ideal => ideal(),
        DatasetId::EdfEv => edf_ev(),
        DatasetId::EdfWeak => edf_weak(),
    }
}

/// A generated dataset: simulated houses plus the template that shaped them.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// The template this dataset instantiates.
    pub template: DatasetTemplate,
    /// Houses with submeter ground truth (first `submetered_houses`).
    pub houses: Vec<House>,
    /// Possession-only houses (no submeter traces retained).
    pub survey_houses: Vec<House>,
}

/// Scale overrides so experiments and tests can shrink datasets.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScaleOverride {
    /// Override the number of submetered houses.
    pub submetered_houses: Option<usize>,
    /// Override the number of possession-only houses.
    pub possession_only_houses: Option<usize>,
    /// Override days per house.
    pub days_per_house: Option<usize>,
}

/// Simulates a dataset from its template.
///
/// Half the houses are forced to own each case appliance in turn (so every
/// case has positive houses); the rest sample ownership from the appliance
/// priors — this mirrors the real datasets, where not every house owns every
/// monitored appliance.
pub fn generate_dataset(tmpl: &DatasetTemplate, scale: ScaleOverride, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_sub = scale.submetered_houses.unwrap_or(tmpl.submetered_houses);
    let n_survey = scale.possession_only_houses.unwrap_or(tmpl.possession_only_houses);
    let days = scale.days_per_house.unwrap_or(tmpl.days_per_house);
    let cfg = SimConfig { days, ..SimConfig::default() };
    let candidates: Vec<ApplianceKind> = tmpl.cases.iter().map(|c| c.kind).collect();

    let mut houses = Vec::with_capacity(n_sub);
    for i in 0..n_sub {
        // Round-robin forcing guarantees every case has positive houses.
        let forced = if i % 2 == 0 { Some(candidates[i / 2 % candidates.len()]) } else { None };
        let owned = sample_ownership(&mut rng, &candidates, forced);
        houses.push(generate_house(i, &owned, &cfg, seed.wrapping_add(1)));
    }

    let mut survey_houses = Vec::with_capacity(n_survey);
    for i in 0..n_survey {
        let forced = if i % 2 == 0 { Some(candidates[i / 2 % candidates.len()]) } else { None };
        let owned = sample_ownership(&mut rng, &candidates, forced);
        let mut house = generate_house(n_sub + i, &owned, &cfg, seed.wrapping_add(2));
        // Survey houses never expose submeter ground truth.
        house.submeters.clear();
        survey_houses.push(house);
    }

    Dataset { template: tmpl.clone(), houses, survey_houses }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameters_match_paper() {
        let uk = ukdale();
        assert_eq!(uk.submetered_houses, 5);
        assert_eq!(uk.max_ffill_s, 180);
        assert_eq!(uk.case(ApplianceKind::Kettle).unwrap().on_threshold_w, 500.0);
        assert_eq!(uk.case(ApplianceKind::Kettle).unwrap().avg_power_w, 2000.0);

        let rf = refit();
        assert_eq!(rf.submetered_houses, 20);
        assert_eq!(rf.cases.len(), 4);
        assert_eq!(rf.case(ApplianceKind::WashingMachine).unwrap().avg_power_w, 500.0);

        let id = ideal();
        assert_eq!(id.submetered_houses, 39);
        assert_eq!(id.possession_only_houses, 216);
        assert_eq!(id.max_ffill_s, 1800);
        assert_eq!(id.case(ApplianceKind::Shower).unwrap().avg_power_w, 8000.0);

        let ev = edf_ev();
        assert_eq!(ev.submetered_houses, 24);
        assert_eq!(ev.max_ffill_s, 5400);
        assert_eq!(ev.case(ApplianceKind::ElectricVehicle).unwrap().on_threshold_w, 1000.0);

        let weak = edf_weak();
        assert_eq!(weak.possession_only_houses, 558);
        assert_eq!(weak.submetered_houses, 0);
    }

    #[test]
    fn names_roundtrip() {
        for id in [
            DatasetId::UkDale,
            DatasetId::Refit,
            DatasetId::Ideal,
            DatasetId::EdfEv,
            DatasetId::EdfWeak,
        ] {
            assert_eq!(DatasetId::from_name(id.name()), Some(id));
        }
    }

    #[test]
    fn generated_dataset_respects_scale_override() {
        let tmpl = refit();
        let scale = ScaleOverride {
            submetered_houses: Some(4),
            possession_only_houses: Some(2),
            days_per_house: Some(2),
        };
        let ds = generate_dataset(&tmpl, scale, 11);
        assert_eq!(ds.houses.len(), 4);
        assert_eq!(ds.survey_houses.len(), 2);
        assert_eq!(ds.houses[0].aggregate.len(), 2 * 24 * 60);
    }

    #[test]
    fn survey_houses_hide_submeters() {
        let tmpl = edf_weak();
        let scale = ScaleOverride {
            possession_only_houses: Some(3),
            days_per_house: Some(2),
            ..Default::default()
        };
        let ds = generate_dataset(&tmpl, scale, 12);
        for house in &ds.survey_houses {
            assert!(house.submeters.is_empty());
            assert!(!house.possession.is_empty()); // fridge at least
        }
    }

    #[test]
    fn every_case_has_positive_houses() {
        let tmpl = refit();
        let scale = ScaleOverride {
            submetered_houses: Some(8),
            days_per_house: Some(1),
            ..Default::default()
        };
        let ds = generate_dataset(&tmpl, scale, 13);
        for c in &tmpl.cases {
            let owners = ds.houses.iter().filter(|h| h.owns(c.kind)).count();
            assert!(owners > 0, "{:?} has no positive houses", c.kind);
        }
    }
}
