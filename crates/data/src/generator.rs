//! Household simulator: composes appliance signatures, base load and noise
//! into aggregate smart-meter series with per-appliance ground truth,
//! following the additive model of the paper (Eq. 1):
//! `x(t) = Σ_j a_j(t) + ε(t)`.

use crate::appliance::ApplianceKind;
use crate::series::TimeSeries;
use crate::templates::{template, DatasetId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Base simulation resolution: one minute.
pub const BASE_STEP_S: u32 = 60;

/// Tunables for the household simulator.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Days of data to simulate per house.
    pub days: usize,
    /// Standard deviation of the measurement noise ε(t), in Watts.
    pub noise_w: f32,
    /// Probability per sample of starting a missing-data gap.
    pub missing_rate: f64,
    /// Mean missing-gap length in samples (geometric).
    pub mean_gap: f64,
    /// Mean base (always-on) load in Watts.
    pub base_load_w: f32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            days: 14,
            noise_w: 25.0,
            missing_rate: 0.0005,
            mean_gap: 3.0,
            base_load_w: 150.0,
        }
    }
}

/// One simulated household: aggregate signal, per-appliance ground truth and
/// the possession (ownership) set used for survey-style weak labels.
#[derive(Clone, Debug)]
pub struct House {
    /// Identifier unique within its dataset.
    pub id: usize,
    /// Mains signal at [`BASE_STEP_S`] resolution (NaN = missing).
    pub aggregate: TimeSeries,
    /// Ground-truth per-appliance power (only for owned appliances).
    pub submeters: BTreeMap<ApplianceKind, TimeSeries>,
    /// Appliances present in the household.
    pub possession: BTreeSet<ApplianceKind>,
}

impl House {
    /// True when the house owns `kind`.
    pub fn owns(&self, kind: ApplianceKind) -> bool {
        self.possession.contains(&kind)
    }
}

/// Draws an activation start hour from the appliance's diurnal profile.
fn sample_start_minute(rng: &mut StdRng, kind: ApplianceKind, day: usize) -> usize {
    let weights = kind.hour_weights();
    let total: f32 = weights.iter().sum();
    let mut pick = rng.random::<f32>() * total;
    let mut hour = 23;
    for (h, &w) in weights.iter().enumerate() {
        if pick < w {
            hour = h;
            break;
        }
        pick -= w;
    }
    let minute = rng.random_range(0..60);
    day * 24 * 60 + hour * 60 + minute
}

/// Simulates the always-cycling fridge over `n` minutes.
fn simulate_fridge(rng: &mut StdRng, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n];
    let mut t = 0usize;
    while t < n {
        let cycle = ApplianceKind::Fridge.signature(rng);
        for (i, &v) in cycle.iter().enumerate() {
            if t + i < n {
                out[t + i] = v;
            }
        }
        // Off period between compressor cycles.
        t += cycle.len() + rng.random_range(20..45);
    }
    out
}

/// Simulates one appliance's ground-truth power trace over `n` minutes.
fn simulate_appliance(rng: &mut StdRng, kind: ApplianceKind, days: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n];
    for day in 0..days {
        let count = nilm_tensor::init::poisson(rng, kind.activations_per_day());
        for _ in 0..count {
            let start = sample_start_minute(rng, kind, day);
            let sig = kind.signature(rng);
            for (i, &v) in sig.iter().enumerate() {
                if start + i < n {
                    // Overlapping activations keep the maximum (a device
                    // cannot run two programs at once).
                    out[start + i] = out[start + i].max(v);
                }
            }
        }
    }
    out
}

/// Slowly varying residual base load (lighting, electronics, standby).
fn simulate_base_load(rng: &mut StdRng, base_w: f32, n: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(n);
    let phase: f32 = rng.random_range(0.0..std::f32::consts::TAU);
    let mut drift = 0.0f32;
    for t in 0..n {
        // Daily rhythm: more load in the evening.
        let day_pos = (t % (24 * 60)) as f32 / (24.0 * 60.0) * std::f32::consts::TAU;
        let daily = 0.5 + 0.35 * (day_pos - std::f32::consts::PI * 1.2 + phase).sin();
        drift = 0.995 * drift + 2.0 * (rng.random::<f32>() - 0.5);
        out.push((base_w * daily + drift * 5.0).max(10.0));
    }
    out
}

/// Injects NaN gaps into a series (meter outages / transmission losses).
fn inject_missing(rng: &mut StdRng, values: &mut [f32], rate: f64, mean_gap: f64) {
    let mut t = 0usize;
    while t < values.len() {
        if rng.random_bool(rate.clamp(0.0, 1.0)) {
            // Geometric gap length with the requested mean.
            let p = 1.0 / mean_gap.max(1.0);
            let mut len = 1usize;
            while !rng.random_bool(p) && len < 500 {
                len += 1;
            }
            let end = (t + len).min(values.len());
            for v in values[t..end].iter_mut() {
                *v = f32::NAN;
            }
            t += len;
        }
        t += 1;
    }
}

/// Simulates one household owning exactly `owned`.
pub fn generate_house(
    id: usize,
    owned: &BTreeSet<ApplianceKind>,
    cfg: &SimConfig,
    seed: u64,
) -> House {
    let mut rng = StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let n = cfg.days * 24 * 60;
    let mut aggregate = simulate_base_load(&mut rng, cfg.base_load_w, n);

    // Fridge contributes to every house but is not a localization target.
    let fridge = simulate_fridge(&mut rng, n);
    for (a, f) in aggregate.iter_mut().zip(&fridge) {
        *a += f;
    }

    let mut submeters = BTreeMap::new();
    for &kind in owned {
        if kind == ApplianceKind::Fridge {
            continue;
        }
        let trace = simulate_appliance(&mut rng, kind, cfg.days, n);
        for (a, v) in aggregate.iter_mut().zip(&trace) {
            *a += v;
        }
        submeters.insert(kind, TimeSeries::new(trace, BASE_STEP_S));
    }

    // Measurement noise, clipped at zero (meters never report negative W).
    for a in aggregate.iter_mut() {
        let eps = nilm_tensor::init::randn(&mut rng) * cfg.noise_w;
        *a = (*a + eps).max(0.0);
    }
    inject_missing(&mut rng, &mut aggregate, cfg.missing_rate, cfg.mean_gap);

    let mut possession = owned.clone();
    possession.insert(ApplianceKind::Fridge);
    House { id, aggregate: TimeSeries::new(aggregate, BASE_STEP_S), submeters, possession }
}

/// Samples an ownership set from per-appliance ownership probabilities,
/// forcing `forced` to be present when given.
pub fn sample_ownership(
    rng: &mut StdRng,
    candidates: &[ApplianceKind],
    forced: Option<ApplianceKind>,
) -> BTreeSet<ApplianceKind> {
    let mut owned = BTreeSet::new();
    for &k in candidates {
        if rng.random_bool(k.ownership_probability()) {
            owned.insert(k);
        }
    }
    if let Some(f) = forced {
        owned.insert(f);
    }
    owned
}

/// One household of a multi-dataset fleet scenario: the dataset template it
/// was drawn from (fixing its sampling step and appliance mix) plus the
/// simulated house itself.
#[derive(Clone, Debug)]
pub struct FleetHousehold {
    /// Template the household was simulated from.
    pub dataset: DatasetId,
    /// The simulated house (aggregate, submeters, possession set).
    pub house: House,
}

impl FleetHousehold {
    /// Stable identifier of the household within a scenario, e.g.
    /// `refit-h3`.
    pub fn label(&self) -> String {
        format!("{}-h{}", self.dataset.name(), self.house.id)
    }
}

/// Generates a multi-appliance serving scenario: `houses_per_template`
/// households from **each** of the given dataset templates, with ownership
/// sampled from the template's own appliance cases via [`sample_ownership`].
///
/// Every template's case appliance is round-robin forced into one household
/// in turn, so each (dataset, appliance) pair that a fleet might serve is
/// guaranteed at least one positive household — the same trick
/// [`crate::templates::generate_dataset`] uses. House ids are globally
/// unique across templates so fleet timelines can be keyed by label.
///
/// This is the workload the `camal_fleet` scheduler ingests: one feed per
/// household, many appliance detectors fanned out over it.
pub fn generate_fleet_scenario(
    ids: &[DatasetId],
    houses_per_template: usize,
    days: usize,
    seed: u64,
) -> Vec<FleetHousehold> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF1EE7);
    let cfg = SimConfig { days, ..SimConfig::default() };
    let mut out = Vec::with_capacity(ids.len() * houses_per_template);
    let mut next_id = 0usize;
    for &id in ids {
        let tmpl = template(id);
        let candidates: Vec<ApplianceKind> = tmpl.cases.iter().map(|c| c.kind).collect();
        for i in 0..houses_per_template {
            let forced = Some(candidates[i % candidates.len()]);
            let owned = sample_ownership(&mut rng, &candidates, forced);
            out.push(FleetHousehold {
                dataset: id,
                house: generate_house(next_id, &owned, &cfg, seed.wrapping_add(3)),
            });
            next_id += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SimConfig {
        SimConfig { days: 2, ..SimConfig::default() }
    }

    fn owned_set(kinds: &[ApplianceKind]) -> BTreeSet<ApplianceKind> {
        kinds.iter().copied().collect()
    }

    #[test]
    fn house_covers_requested_duration() {
        let house = generate_house(0, &owned_set(&[ApplianceKind::Kettle]), &small_cfg(), 42);
        assert_eq!(house.aggregate.len(), 2 * 24 * 60);
        assert_eq!(house.aggregate.step_s, BASE_STEP_S);
    }

    #[test]
    fn aggregate_dominates_submeters() {
        // Where not missing, aggregate ≥ submeter - noise margin (Eq. 1).
        let house = generate_house(1, &owned_set(&[ApplianceKind::Dishwasher]), &small_cfg(), 43);
        let sub = &house.submeters[&ApplianceKind::Dishwasher];
        let mut violations = 0;
        for (a, s) in house.aggregate.values.iter().zip(&sub.values) {
            if !a.is_nan() && *a + 200.0 < *s {
                violations += 1;
            }
        }
        assert_eq!(violations, 0);
    }

    #[test]
    fn unowned_appliances_have_no_submeter() {
        let house = generate_house(2, &owned_set(&[ApplianceKind::Kettle]), &small_cfg(), 44);
        assert!(house.submeters.get(&ApplianceKind::ElectricVehicle).is_none());
        assert!(house.owns(ApplianceKind::Kettle));
        assert!(!house.owns(ApplianceKind::ElectricVehicle));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        // Compare bit patterns so NaN gaps compare equal to themselves.
        fn bits(s: &TimeSeries) -> Vec<u32> {
            s.values.iter().map(|v| v.to_bits()).collect()
        }
        let owned = owned_set(&[ApplianceKind::Kettle, ApplianceKind::Dishwasher]);
        let a = generate_house(3, &owned, &small_cfg(), 7);
        let b = generate_house(3, &owned, &small_cfg(), 7);
        assert_eq!(bits(&a.aggregate), bits(&b.aggregate));
        let c = generate_house(3, &owned, &small_cfg(), 8);
        assert_ne!(bits(&a.aggregate), bits(&c.aggregate));
    }

    #[test]
    fn owned_appliance_actually_runs() {
        // Over 2 days a kettle (4/day Poisson) almost surely activates.
        let house = generate_house(4, &owned_set(&[ApplianceKind::Kettle]), &small_cfg(), 45);
        let sub = &house.submeters[&ApplianceKind::Kettle];
        let on = sub.values.iter().filter(|&&v| v > 500.0).count();
        assert!(on > 0, "kettle never ran in two days");
    }

    #[test]
    fn missing_rate_controls_gaps() {
        let mut cfg = small_cfg();
        cfg.missing_rate = 0.0;
        let clean = generate_house(5, &owned_set(&[ApplianceKind::Kettle]), &cfg, 46);
        assert_eq!(clean.aggregate.missing_count(), 0);
        cfg.missing_rate = 0.01;
        let gappy = generate_house(5, &owned_set(&[ApplianceKind::Kettle]), &cfg, 46);
        assert!(gappy.aggregate.missing_count() > 0);
    }

    #[test]
    fn fleet_scenario_covers_every_template_case() {
        let ids = [DatasetId::Refit, DatasetId::UkDale];
        let fleet = generate_fleet_scenario(&ids, 4, 2, 17);
        assert_eq!(fleet.len(), 8);
        // House ids are globally unique, labels carry the dataset.
        let mut seen = BTreeSet::new();
        for fh in &fleet {
            assert!(seen.insert(fh.house.id), "duplicate house id {}", fh.house.id);
            assert!(fh.label().starts_with(fh.dataset.name()));
        }
        // Round-robin forcing: every case appliance of each template owns at
        // least one household from that template.
        for &id in &ids {
            for case in &template(id).cases {
                let owners =
                    fleet.iter().filter(|fh| fh.dataset == id && fh.house.owns(case.kind)).count();
                assert!(owners > 0, "{:?}:{:?} has no positive household", id, case.kind);
            }
        }
    }

    #[test]
    fn fleet_scenario_is_deterministic_per_seed() {
        let ids = [DatasetId::Refit];
        let bits = |f: &[FleetHousehold]| -> Vec<Vec<u32>> {
            f.iter()
                .map(|fh| fh.house.aggregate.values.iter().map(|v| v.to_bits()).collect())
                .collect()
        };
        let a = generate_fleet_scenario(&ids, 3, 2, 5);
        let b = generate_fleet_scenario(&ids, 3, 2, 5);
        assert_eq!(bits(&a), bits(&b));
        let c = generate_fleet_scenario(&ids, 3, 2, 6);
        assert_ne!(bits(&a), bits(&c));
    }

    #[test]
    fn ownership_sampling_respects_forced() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let owned = sample_ownership(
                &mut r,
                ApplianceKind::targets(),
                Some(ApplianceKind::ElectricVehicle),
            );
            assert!(owned.contains(&ApplianceKind::ElectricVehicle));
        }
    }
}
