//! Time-series container for smart-meter signals.
//!
//! Power readings are in Watts; missing readings are `f32::NAN` (the
//! preprocessing pipeline resamples, forward-fills bounded gaps, and drops
//! windows that still contain NaNs — mirroring §V-B of the paper).

/// A regularly sampled power series. `values[i]` is the average power over
/// the `i`-th interval of `step_s` seconds; `NAN` marks a missing reading.
#[derive(Clone, Debug, PartialEq)]
pub struct TimeSeries {
    /// Power values in Watts (NaN = missing).
    pub values: Vec<f32>,
    /// Sampling interval in seconds.
    pub step_s: u32,
}

impl TimeSeries {
    /// Creates a series from values and a sampling step.
    pub fn new(values: Vec<f32>, step_s: u32) -> Self {
        assert!(step_s > 0, "step must be positive");
        TimeSeries { values, step_s }
    }

    /// A zero-valued series covering `n` samples.
    pub fn zeros(n: usize, step_s: u32) -> Self {
        Self::new(vec![0.0; n], step_s)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total covered duration in seconds.
    pub fn duration_s(&self) -> u64 {
        self.values.len() as u64 * self.step_s as u64
    }

    /// Number of missing (NaN) samples.
    pub fn missing_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_nan()).count()
    }

    /// Mean over the non-missing samples (0.0 if all missing).
    pub fn mean_ignore_nan(&self) -> f32 {
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for &v in &self.values {
            if !v.is_nan() {
                sum += v as f64;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            (sum / n as f64) as f32
        }
    }

    /// Adds another series elementwise (propagating NaN), padding with the
    /// shorter length. Both series must share the sampling step.
    pub fn add_in_place(&mut self, other: &TimeSeries) {
        assert_eq!(self.step_s, other.step_s, "step mismatch in add");
        let n = self.values.len().min(other.values.len());
        for i in 0..n {
            self.values[i] += other.values[i];
        }
    }

    /// Total energy in watt-hours over non-missing samples.
    pub fn energy_wh(&self) -> f64 {
        let hours = self.step_s as f64 / 3600.0;
        self.values.iter().filter(|v| !v.is_nan()).map(|&v| v as f64 * hours).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let s = TimeSeries::new(vec![1.0, f32::NAN, 3.0], 60);
        assert_eq!(s.len(), 3);
        assert_eq!(s.duration_s(), 180);
        assert_eq!(s.missing_count(), 1);
        assert!((s.mean_ignore_nan() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zeros_is_clean() {
        let s = TimeSeries::zeros(10, 30);
        assert_eq!(s.missing_count(), 0);
        assert_eq!(s.mean_ignore_nan(), 0.0);
    }

    #[test]
    fn add_in_place_sums() {
        let mut a = TimeSeries::new(vec![1.0, 2.0], 60);
        let b = TimeSeries::new(vec![10.0, 20.0], 60);
        a.add_in_place(&b);
        assert_eq!(a.values, vec![11.0, 22.0]);
    }

    #[test]
    fn energy_integrates_power() {
        // 1000 W for two 30-minute intervals = 1 kWh.
        let s = TimeSeries::new(vec![1000.0, 1000.0], 1800);
        assert!((s.energy_wh() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn all_missing_mean_is_zero() {
        let s = TimeSeries::new(vec![f32::NAN; 4], 60);
        assert_eq!(s.mean_ignore_nan(), 0.0);
    }
}
