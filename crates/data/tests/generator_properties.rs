//! Property-based tests for the data simulator and preprocessing pipeline.

use nilm_data::appliance::ApplianceKind;
use nilm_data::generator::{generate_house, SimConfig};
use nilm_data::preprocess::{forward_fill, resample};
use nilm_data::series::TimeSeries;
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every appliance signature is bounded in power and duration.
    #[test]
    fn signatures_are_physical(seed in 0u64..5000) {
        let mut rng = nilm_tensor::init::rng(seed);
        for &kind in ApplianceKind::targets() {
            let sig = kind.signature(&mut rng);
            prop_assert!(!sig.is_empty());
            prop_assert!(sig.len() <= 8 * 60, "{kind:?} longer than 8h: {}", sig.len());
            prop_assert!(sig.iter().all(|&v| v > 0.0 && v <= 9_500.0), "{kind:?} power out of range");
        }
    }

    /// Generated aggregates are non-negative and have the exact length.
    #[test]
    fn aggregates_are_nonnegative(seed in 0u64..1000, days in 1usize..3) {
        let cfg = SimConfig { days, missing_rate: 0.0, ..Default::default() };
        let owned: BTreeSet<ApplianceKind> = [ApplianceKind::Kettle].into_iter().collect();
        let house = generate_house(0, &owned, &cfg, seed);
        prop_assert_eq!(house.aggregate.len(), days * 24 * 60);
        prop_assert!(house.aggregate.values.iter().all(|&v| v >= 0.0));
    }

    /// Resampling twice (a->b->c) equals resampling once (a->c) for clean
    /// series when the ratios are integral.
    #[test]
    fn resample_composes(values in proptest::collection::vec(0.0f32..5000.0, 120..360)) {
        let n = values.len() - values.len() % 60;
        let s = TimeSeries::new(values[..n].to_vec(), 60);
        let direct = resample(&s, 3600);
        let stepped = resample(&resample(&s, 600), 3600);
        prop_assert_eq!(direct.len(), stepped.len());
        for (a, b) in direct.values.iter().zip(&stepped.values) {
            prop_assert!((a - b).abs() < 0.5, "{} vs {}", a, b);
        }
    }

    /// Forward-fill is idempotent.
    #[test]
    fn forward_fill_is_idempotent(
        values in proptest::collection::vec(prop_oneof![4 => (0.0f32..100.0).boxed(), 1 => Just(f32::NAN).boxed()], 8..64),
        max_gap in 1u32..5,
    ) {
        let s = TimeSeries::new(values, 60);
        let once = forward_fill(&s, 60 * max_gap);
        let twice = forward_fill(&once, 60 * max_gap);
        for (a, b) in once.values.iter().zip(&twice.values) {
            prop_assert!(a.to_bits() == b.to_bits());
        }
    }

    /// Forward-fill never invents values: every filled sample equals some
    /// earlier valid sample.
    #[test]
    fn forward_fill_uses_existing_values(
        values in proptest::collection::vec(prop_oneof![3 => (0.0f32..100.0).boxed(), 1 => Just(f32::NAN).boxed()], 8..64),
    ) {
        let s = TimeSeries::new(values.clone(), 60);
        let filled = forward_fill(&s, 60 * 100);
        for (i, v) in filled.values.iter().enumerate() {
            if !v.is_nan() && values[i].is_nan() {
                // Must match the closest previous valid original value.
                let prev = values[..i].iter().rev().find(|x| !x.is_nan());
                prop_assert_eq!(Some(*v), prev.copied());
            }
        }
    }

    /// Ownership sampling respects the candidate set.
    #[test]
    fn ownership_is_subset_of_candidates(seed in 0u64..500) {
        let mut rng = nilm_tensor::init::rng(seed);
        let candidates = [ApplianceKind::Kettle, ApplianceKind::Dishwasher];
        let owned = nilm_data::generator::sample_ownership(&mut rng, &candidates, None);
        for k in &owned {
            prop_assert!(candidates.contains(k));
        }
    }
}
