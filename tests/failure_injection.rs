//! Failure-injection tests: degraded inputs the pipeline must survive
//! (extreme power values, heavy missing data, degenerate label budgets,
//! pathological configurations).

use camal::{CamalConfig, CamalModel};
use nilm_data::generator::SimConfig;
use nilm_data::prelude::*;
use nilm_data::preprocess::Window;
use nilm_models::TrainConfig;

fn fast_cfg() -> CamalConfig {
    CamalConfig {
        n_ensemble: 1,
        kernels: vec![5],
        trials: 1,
        width_div: 16,
        train: TrainConfig { epochs: 2, batch_size: 8, lr: 1e-3, clip: 0.0, seed: 1 },
        ..CamalConfig::default()
    }
}

fn window_with(input: Vec<f32>, weak: u8) -> Window {
    let w = input.len();
    Window {
        aggregate_w: input.iter().map(|v| v * 1000.0).collect(),
        appliance_w: vec![0.0; w],
        status: vec![weak; w],
        input,
        weak_label: weak,
        house_id: 0,
    }
}

#[test]
fn extreme_power_spikes_do_not_produce_nan() {
    // A 1 MW artifact (meter glitch) must not destabilize training.
    let mut windows = Vec::new();
    for i in 0..12 {
        let mut input = vec![0.2f32; 64];
        if i % 2 == 0 {
            input[10] = 1000.0; // 1 MW after /1000 scaling
            windows.push(window_with(input, 1));
        } else {
            windows.push(window_with(input, 0));
        }
    }
    let set = WindowSet::new(windows);
    let mut model = CamalModel::train(&fast_cfg(), &set, &set, 2);
    let loc = model.localize_set(&set, 4);
    for (p, cam) in loc.detection_proba.iter().zip(&loc.cam) {
        assert!(p.is_finite());
        assert!(cam.iter().all(|v| v.is_finite()));
    }
}

#[test]
fn heavy_missing_data_still_yields_windows() {
    let cfg = SimConfig { days: 4, missing_rate: 0.02, mean_gap: 5.0, ..Default::default() };
    let owned = [ApplianceKind::Kettle].into_iter().collect();
    let house = nilm_data::generator::generate_house(0, &owned, &cfg, 3);
    let filled = forward_fill(&resample(&house.aggregate, 60), 300);
    let windows = slice_windows(&filled, None, 300.0, 64, 0, false);
    // With 2% gap starts, windows survive (long gaps drop some).
    assert!(!windows.is_empty());
    for w in &windows {
        assert!(w.input.iter().all(|v| v.is_finite()));
    }
}

#[test]
fn all_missing_series_produces_no_windows() {
    let dead = TimeSeries::new(vec![f32::NAN; 512], 60);
    let windows = slice_windows(&dead, None, 300.0, 64, 0, false);
    assert!(windows.is_empty());
}

#[test]
#[should_panic(expected = "empty training set")]
fn empty_training_set_fails_loudly() {
    let empty = WindowSet::default();
    // With no training windows, ensemble training cannot select members and
    // must panic with a clear message rather than return a broken model.
    let _ = CamalModel::train(&fast_cfg(), &empty, &empty, 1);
}

#[test]
fn single_class_training_detects_nothing_or_everything_but_stays_finite() {
    // All-positive training data (no negatives at all).
    let windows: Vec<Window> = (0..8).map(|_| window_with(vec![1.0; 64], 1)).collect();
    let set = WindowSet::new(windows);
    let mut cfg = fast_cfg();
    cfg.balance = false; // balancing would empty the set
    let mut model = CamalModel::train(&cfg, &set, &set, 1);
    let loc = model.localize_set(&set, 4);
    assert!(loc.detection_proba.iter().all(|p| p.is_finite()));
}

#[test]
fn detection_threshold_extremes() {
    let mut windows = Vec::new();
    for i in 0..8 {
        let mut input = vec![0.2f32; 64];
        if i % 2 == 0 {
            for v in input[20..40].iter_mut() {
                *v = 2.0;
            }
        }
        windows.push(window_with(input, (i % 2 == 0) as u8));
    }
    let set = WindowSet::new(windows);

    // Threshold 1.0: nothing can exceed it -> all OFF everywhere.
    let mut cfg = fast_cfg();
    cfg.detection_threshold = 1.0;
    let mut model = CamalModel::train(&cfg, &set, &set, 2);
    let loc = model.localize_set(&set, 4);
    assert!(loc.detected.iter().all(|&d| !d));
    assert!(loc.status.iter().flatten().all(|&s| s == 0));

    // Threshold -1: everything is "detected"; localization still gates ON
    // timesteps by the CAM/attention rule.
    let mut cfg = fast_cfg();
    cfg.detection_threshold = -1.0;
    let mut model = CamalModel::train(&cfg, &set, &set, 2);
    let loc = model.localize_set(&set, 4);
    assert!(loc.detected.iter().all(|&d| d));
}

#[test]
fn constant_window_input_is_handled() {
    // Standardization of a constant window must not divide by zero.
    let windows: Vec<Window> = (0..8).map(|i| window_with(vec![0.5; 64], (i % 2) as u8)).collect();
    let set = WindowSet::new(windows);
    let mut model = CamalModel::train(&fast_cfg(), &set, &set, 2);
    let loc = model.localize_set(&set, 4);
    assert!(loc.status.iter().flatten().all(|&s| s == 0 || s == 1));
    assert!(loc.cam.iter().flatten().all(|v| v.is_finite()));
}

#[test]
fn zero_learning_rate_changes_nothing() {
    let mut windows = Vec::new();
    for i in 0..8 {
        windows.push(window_with(vec![0.2 + (i % 2) as f32; 32], (i % 2) as u8));
    }
    let set = WindowSet::new(windows);
    let mut cfg = fast_cfg();
    cfg.train.lr = 0.0;
    // Training with lr = 0 must still produce a functional (untrained) model.
    let mut model = CamalModel::train(&cfg, &set, &set, 1);
    let report = model.evaluate(&set, 1000.0, 4);
    assert!(report.localization.f1.is_finite());
}
