//! Integration tests pinning the physical invariants of the smart-meter
//! simulator against the additive aggregation model of the paper (Eq. 1/2).

use nilm_data::prelude::*;
use std::collections::BTreeSet;

fn owned(kinds: &[ApplianceKind]) -> BTreeSet<ApplianceKind> {
    kinds.iter().copied().collect()
}

#[test]
fn aggregate_is_superposition_of_appliances_plus_noise() {
    let cfg = SimConfig { days: 3, missing_rate: 0.0, ..Default::default() };
    let house =
        generate_house(0, &owned(&[ApplianceKind::Dishwasher, ApplianceKind::Kettle]), &cfg, 99);
    // Sum of submeters never exceeds the aggregate beyond the noise margin.
    let n = house.aggregate.len();
    for t in 0..n {
        let total: f32 = house.submeters.values().map(|s| s.values[t]).sum();
        let agg = house.aggregate.values[t];
        assert!(agg + 6.0 * cfg.noise_w >= total, "t={t}: aggregate {agg} < appliance sum {total}");
    }
}

#[test]
fn resample_then_threshold_matches_energy_scale() {
    // Resampling must preserve energy (mean power), so a dishwasher's
    // energy at 1-minute and 10-minute resolution agree.
    let cfg = SimConfig { days: 4, missing_rate: 0.0, ..Default::default() };
    let house = generate_house(1, &owned(&[ApplianceKind::Dishwasher]), &cfg, 7);
    let sub = &house.submeters[&ApplianceKind::Dishwasher];
    let resampled = resample(sub, 600);
    let e1 = sub.energy_wh();
    let e2 = resampled.energy_wh();
    let rel = (e1 - e2).abs() / e1.max(1.0);
    assert!(rel < 0.02, "energy drift {rel} ({e1} vs {e2})");
}

#[test]
fn higher_usage_appliances_activate_more_often() {
    let cfg = SimConfig { days: 14, missing_rate: 0.0, ..Default::default() };
    let house =
        generate_house(2, &owned(&[ApplianceKind::Kettle, ApplianceKind::Dishwasher]), &cfg, 13);
    let on_fraction = |k: ApplianceKind, thr: f32| {
        let s = &house.submeters[&k];
        s.values.iter().filter(|&&v| v >= thr).count()
    };
    // Kettle runs ~4x/day but only minutes; dishwasher ~0.7x/day for ~2h.
    // Dishwasher should therefore have more total ON minutes.
    assert!(
        on_fraction(ApplianceKind::Dishwasher, 50.0) > on_fraction(ApplianceKind::Kettle, 500.0)
    );
}

#[test]
fn survey_datasets_have_balanced_forced_ownership() {
    let scale = ScaleOverride {
        possession_only_houses: Some(40),
        days_per_house: Some(2),
        ..Default::default()
    };
    let ds = generate_dataset(&edf_weak(), scale, 3);
    let owners = ds.survey_houses.iter().filter(|h| h.owns(ApplianceKind::ElectricVehicle)).count();
    // Half the houses force the case appliance; priors add more.
    assert!(owners >= 20, "only {owners}/40 EV owners");
    assert!(owners < 40, "every house owns an EV: degenerate survey");
}

#[test]
fn edf_ev_template_produces_long_activations() {
    let scale =
        ScaleOverride { submetered_houses: Some(4), days_per_house: Some(6), ..Default::default() };
    let ds = generate_dataset(&edf_ev(), scale, 5);
    // At 30-minute resolution an EV charge spans multiple samples.
    let mut longest_run = 0usize;
    for house in &ds.houses {
        if let Some(sub) = house.submeters.get(&ApplianceKind::ElectricVehicle) {
            let resampled = resample(sub, ds.template.step_s);
            let status = status_from_power(&resampled, 1000.0);
            let mut run = 0usize;
            for s in status {
                if s == 1 {
                    run += 1;
                    longest_run = longest_run.max(run);
                } else {
                    run = 0;
                }
            }
        }
    }
    assert!(longest_run >= 2, "EV charging should span >= 2 half-hour samples");
}

#[test]
fn missing_injection_is_bounded_and_fillable() {
    let cfg = SimConfig { days: 4, missing_rate: 0.01, mean_gap: 2.0, ..Default::default() };
    let house = generate_house(3, &owned(&[ApplianceKind::Kettle]), &cfg, 21);
    let missing_before = house.aggregate.missing_count();
    assert!(missing_before > 0, "expected some gaps at 1% rate");
    // A generous forward-fill bound removes all interior gaps.
    let filled = forward_fill(&house.aggregate, 60 * 60 * 24);
    assert!(filled.missing_count() <= missing_before);
    // Windows sliced after fill never contain NaN.
    let windows = slice_windows(&filled, None, 300.0, 64, 0, false);
    for w in &windows {
        assert!(w.input.iter().all(|v| v.is_finite()));
    }
}
