//! Cross-crate property-based tests (proptest) pinning the invariants that
//! DESIGN.md §7 calls out.

use camal::localize::{attention_status, normalize_cam, standardize};
use nilm_data::preprocess::{forward_fill, resample, slice_windows, status_from_power};
use nilm_data::series::TimeSeries;
use nilm_data::windows::WindowSet;
use nilm_metrics::{balanced_accuracy, f1_score, matching_ratio};
use proptest::prelude::*;

fn finite_power() -> impl Strategy<Value = f32> {
    (0.0f32..12_000.0).prop_map(|v| v)
}

proptest! {
    #[test]
    fn normalized_cam_stays_in_unit_interval(mut cam in proptest::collection::vec(-100.0f32..100.0, 1..256)) {
        normalize_cam(&mut cam);
        prop_assert!(cam.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn attention_scores_are_probabilities(
        cam in proptest::collection::vec(0.0f32..1.0, 16..64),
        xs in proptest::collection::vec(finite_power(), 16..64),
        margin in 0.0f32..2.0,
    ) {
        let n = cam.len().min(xs.len());
        let (status, scores) = attention_status(&cam[..n], &xs[..n], margin);
        prop_assert_eq!(status.len(), n);
        prop_assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
        // Status is exactly scores > 0.5.
        for (st, sc) in status.iter().zip(&scores) {
            prop_assert_eq!(*st == 1, *sc > 0.5);
        }
    }

    #[test]
    fn standardize_output_is_centered(xs in proptest::collection::vec(finite_power(), 2..128)) {
        let z = standardize(&xs);
        let mean: f32 = z.iter().sum::<f32>() / z.len() as f32;
        prop_assert!(mean.abs() < 1e-2, "mean {}", mean);
    }

    #[test]
    fn matching_ratio_is_bounded_and_symmetric(
        a in proptest::collection::vec(finite_power(), 1..64),
        b in proptest::collection::vec(finite_power(), 1..64),
    ) {
        let n = a.len().min(b.len());
        let mr = matching_ratio(&a[..n], &b[..n]);
        prop_assert!((0.0..=1.0).contains(&mr));
        let mr2 = matching_ratio(&b[..n], &a[..n]);
        prop_assert!((mr - mr2).abs() < 1e-9);
    }

    #[test]
    fn classification_metrics_are_bounded(
        pred in proptest::collection::vec(0u8..2, 1..256),
        truth in proptest::collection::vec(0u8..2, 1..256),
    ) {
        let n = pred.len().min(truth.len());
        let f1 = f1_score(&pred[..n], &truth[..n]);
        let ba = balanced_accuracy(&pred[..n], &truth[..n]);
        prop_assert!((0.0..=1.0).contains(&f1));
        prop_assert!((0.0..=1.0).contains(&ba));
    }

    #[test]
    fn perfect_prediction_maximizes_metrics(truth in proptest::collection::vec(0u8..2, 1..128)) {
        prop_assert_eq!(f1_score(&truth, &truth), 1.0);
        prop_assert_eq!(balanced_accuracy(&truth, &truth), 1.0);
    }

    #[test]
    fn resampling_preserves_mean_of_clean_series(
        values in proptest::collection::vec(finite_power(), 40..200),
        ratio in 2u32..5,
    ) {
        let n = values.len() - values.len() % ratio as usize;
        let series = TimeSeries::new(values[..n].to_vec(), 60);
        let resampled = resample(&series, 60 * ratio);
        if !resampled.is_empty() {
            let orig = series.values[..resampled.len() * ratio as usize]
                .iter().map(|&v| v as f64).sum::<f64>() / (resampled.len() * ratio as usize) as f64;
            let new = resampled.values.iter().map(|&v| v as f64).sum::<f64>() / resampled.len() as f64;
            prop_assert!((orig - new).abs() < 1.0, "orig {} new {}", orig, new);
        }
    }

    #[test]
    fn forward_fill_never_fills_beyond_max_gap(
        mut values in proptest::collection::vec(finite_power(), 16..128),
        gap_start in 1usize..8,
        gap_len in 1usize..12,
        max_gap in 1u32..6,
    ) {
        let start = gap_start.min(values.len() - 1);
        let end = (start + gap_len).min(values.len());
        for v in &mut values[start..end] {
            *v = f32::NAN;
        }
        let series = TimeSeries::new(values, 60);
        let filled = forward_fill(&series, 60 * max_gap);
        let run = end - start;
        if run > max_gap as usize {
            // Long gaps must remain missing.
            prop_assert!(filled.values[start..end].iter().all(|v| v.is_nan()));
        } else {
            // Short gaps are filled (there is a valid value before start).
            prop_assert!(filled.values[start..end].iter().all(|v| !v.is_nan()));
        }
    }

    #[test]
    fn status_threshold_is_monotone(
        values in proptest::collection::vec(finite_power(), 1..64),
        threshold in 1.0f32..5000.0,
    ) {
        let series = TimeSeries::new(values, 60);
        let low = status_from_power(&series, threshold);
        let high = status_from_power(&series, threshold * 2.0);
        // Raising the threshold can only turn ON samples OFF.
        for (l, h) in low.iter().zip(&high) {
            prop_assert!(h <= l);
        }
    }

    #[test]
    fn windows_partition_the_series(
        values in proptest::collection::vec(finite_power(), 32..256),
        w in 4usize..32,
    ) {
        let agg = TimeSeries::new(values.clone(), 60);
        let windows = slice_windows(&agg, None, 300.0, w, 0, false);
        prop_assert_eq!(windows.len(), values.len() / w);
        // Windows tile the prefix without overlap.
        for (i, win) in windows.iter().enumerate() {
            for (j, &x) in win.aggregate_w.iter().enumerate() {
                prop_assert_eq!(x, values[i * w + j]);
            }
        }
    }

    #[test]
    fn undersampling_balances_exactly(
        labels in proptest::collection::vec(0u8..2, 4..64),
    ) {
        use nilm_data::preprocess::Window;
        let windows: Vec<Window> = labels.iter().enumerate().map(|(i, &l)| Window {
            input: vec![0.0; 8],
            aggregate_w: vec![0.0; 8],
            status: vec![l; 8],
            appliance_w: vec![0.0; 8],
            weak_label: l,
            house_id: i,
        }).collect();
        let set = WindowSet::new(windows);
        let mut rng = nilm_tensor::init::rng(0);
        let balanced = set.balance_undersample(&mut rng);
        let pos = balanced.positives();
        prop_assert_eq!(pos * 2, balanced.len());
    }
}
