//! Smoke-runs every experiment module so the reproduction suite cannot rot.
//! Each test uses the tiniest possible scale; the full runs live behind the
//! `nilm-eval` binaries.

use nilm_eval::experiments;
use nilm_eval::runner::Scale;

fn tiny() -> Scale {
    let mut s = Scale::smoke();
    s.epochs = 1;
    s.trials = 1;
    s.kernels = vec![5];
    s.n_ensemble = 1;
    s
}

#[test]
fn table2_reports_all_models() {
    let t = experiments::table2::run(0);
    assert_eq!(t.rows.len(), 6);
}

#[test]
fn fig9_costs_and_storage() {
    let costs = experiments::fig9::run_costs();
    assert_eq!(costs.rows.len(), 3);
    let storage = experiments::fig9::run_storage();
    assert_eq!(storage.rows.len(), 3);
}

#[test]
fn fig5_single_case_sweep() {
    let t = experiments::fig5::run(&tiny(), Some("refit:kettle"));
    assert!(!t.rows.is_empty());
    // CamAL rows use 1 label/window; a strong baseline at the same window
    // count uses window-length× more.
    let camal_row = t.rows.iter().find(|r| r[1] == "CamAL").unwrap();
    let strong_row = t.rows.iter().find(|r| r[1] == "TPNILM" && r[2] == camal_row[2]).unwrap();
    let camal_labels: usize = camal_row[3].parse().unwrap();
    let strong_labels: usize = strong_row[3].parse().unwrap();
    assert_eq!(strong_labels, camal_labels * tiny().window);
}

#[test]
fn table3_produces_average_row() {
    let t = experiments::table3::run(&tiny(), 1);
    assert_eq!(t.rows.last().unwrap()[0], "Avg.");
}

#[test]
fn fig6_all_parts_run() {
    let s = tiny();
    assert!(!experiments::fig6::run_window_length(&s).rows.is_empty());
    assert!(!experiments::fig6::run_detection_vs_localization(&s).rows.is_empty());
    let mut s2 = s.clone();
    s2.kernels = vec![5, 9];
    assert!(!experiments::fig6::run_ensemble_size(&s2).rows.is_empty());
}

#[test]
fn table4_ablation_runs() {
    let mut s = tiny();
    s.kernels = vec![5, 9];
    s.n_ensemble = 2;
    let t = experiments::table4::run(&s, 1);
    assert_eq!(t.rows.len(), 5);
}

#[test]
fn fig7_all_parts_run() {
    let s = tiny();
    assert!(!experiments::fig7::run_training_time(&s).rows.is_empty());
    assert!(!experiments::fig7::run_epoch_scaling(&s).rows.is_empty());
    assert!(!experiments::fig7::run_throughput(&s).rows.is_empty());
}

#[test]
fn fig8_possession_runs() {
    let t = experiments::fig8::run(&tiny());
    assert!(!t.rows.is_empty());
}

#[test]
fn fig10_soft_labels_runs() {
    let t = experiments::fig10::run(&tiny());
    assert!(!t.rows.is_empty());
}
