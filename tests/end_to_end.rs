//! Cross-crate integration tests: simulator → preprocessing → CamAL →
//! metrics, exercised end to end at smoke scale.

use camal::{CamalConfig, CamalModel};
use nilm_data::prelude::*;
use nilm_models::TrainConfig;

fn fast_cfg() -> CamalConfig {
    CamalConfig {
        n_ensemble: 2,
        kernels: vec![5, 9],
        trials: 1,
        width_div: 16,
        train: TrainConfig { epochs: 6, batch_size: 16, lr: 2e-3, clip: 0.0, seed: 1 },
        ..CamalConfig::default()
    }
}

fn small_dataset(seed: u64) -> Dataset {
    let scale =
        ScaleOverride { submetered_houses: Some(6), days_per_house: Some(3), ..Default::default() };
    generate_dataset(&refit(), scale, seed)
}

#[test]
fn camal_beats_trivial_baselines_on_simulated_refit() {
    let ds = small_dataset(99);
    let case = prepare_case(&ds, ApplianceKind::Kettle, 128, &SplitConfig::default());
    let mut model = CamalModel::train(&fast_cfg(), &case.train, &case.val, 4);
    let report = model.evaluate(&case.test, 2000.0, 16);

    // Trivial baselines computed on the same test windows.
    let mut all_on = nilm_metrics::Confusion::default();
    let mut all_off = nilm_metrics::Confusion::default();
    for w in &case.test.windows {
        for &t in &w.status {
            all_on.push(true, t != 0);
            all_off.push(false, t != 0);
        }
    }
    assert!(
        report.localization.f1 > all_on.f1(),
        "CamAL F1 {:.3} must beat always-ON {:.3}",
        report.localization.f1,
        all_on.f1()
    );
    assert!(report.detection.balanced_accuracy > 0.6);
}

#[test]
fn pipeline_is_deterministic_given_seeds() {
    let ds = small_dataset(5);
    let case = prepare_case(&ds, ApplianceKind::Kettle, 128, &SplitConfig::default());
    let cfg = fast_cfg();
    let mut m1 = CamalModel::train(&cfg, &case.train, &case.val, 1);
    let mut m2 = CamalModel::train(&cfg, &case.train, &case.val, 1);
    let r1 = m1.evaluate(&case.test, 2000.0, 16);
    let r2 = m2.evaluate(&case.test, 2000.0, 16);
    assert_eq!(r1.localization.f1, r2.localization.f1);
    assert_eq!(r1.energy.mae, r2.energy.mae);
}

#[test]
fn power_estimates_never_exceed_aggregate() {
    let ds = small_dataset(17);
    let case = prepare_case(&ds, ApplianceKind::Dishwasher, 128, &SplitConfig::default());
    let mut model = CamalModel::train(&fast_cfg(), &case.train, &case.val, 4);
    let loc = model.localize_set(&case.test, 16);
    for (i, w) in case.test.windows.iter().enumerate() {
        let est = camal::estimate_power(&loc.status[i], 800.0, &w.aggregate_w);
        for (p, x) in est.iter().zip(&w.aggregate_w) {
            assert!(*p <= x.max(0.0) + 1e-3, "estimate {p} exceeds aggregate {x}");
        }
    }
}

#[test]
fn weak_labels_are_consistent_with_strong_labels() {
    let ds = small_dataset(31);
    for kind in [ApplianceKind::Kettle, ApplianceKind::Dishwasher] {
        let case = prepare_case(&ds, kind, 128, &SplitConfig::default());
        for split in [&case.train, &case.val, &case.test] {
            for w in &split.windows {
                let any_on = w.status.iter().any(|&s| s == 1);
                assert_eq!(any_on, w.weak_label == 1, "weak label inconsistent");
            }
        }
    }
}

#[test]
fn soft_label_round_trip_trains_a_baseline() {
    use nilm_eval::runner::evaluate_frame_model;
    use nilm_models::baselines::BaselineKind;
    use nilm_models::train_soft;

    let ds = small_dataset(43);
    let case = prepare_case(&ds, ApplianceKind::Kettle, 128, &SplitConfig::default());
    let mut camal_model = CamalModel::train(&fast_cfg(), &case.train, &case.val, 4);
    let soft = camal_model.soft_labels(&case.train, 16);
    assert_eq!(soft.len(), case.train.len());

    let mut rng = nilm_tensor::init::rng(3);
    let mut baseline = BaselineKind::TpNilm.build(&mut rng, 16);
    let cfg = TrainConfig { epochs: 2, ..Default::default() };
    let stats = train_soft(baseline.as_mut(), &case.train, &soft, &cfg);
    assert!(stats.final_loss().is_finite());
    let report = evaluate_frame_model(baseline.as_mut(), &case.test, 2000.0);
    assert!(report.localization.f1.is_finite());
}

/// Serving equivalence across compute backends: the streaming service, the
/// fleet scheduler and the HTTP gateway must each return **byte-identical**
/// response JSON whether the kernels underneath are naive, lowered-GEMM or
/// SIMD. The backend is flipped with [`set_forced_backend`] rather than the
/// `NILM_BACKEND` env var (which is latched once per process); the flip is
/// process-global, but every backend raced here is bit-identical (SIMD is
/// included only when `simd_exact()` holds), so concurrently running tests
/// cannot observe a numeric difference.
#[test]
fn serving_surfaces_are_backend_invariant() {
    use camal::ensemble::EnsembleMember;
    use camal::fleet::{serve_fleet, FleetConfig};
    use camal::registry::{ModelKey, ModelRegistry};
    use camal::stream::{serve, HouseholdSeries, StreamConfig};
    use nilm_data::series::TimeSeries;
    use nilm_data::templates::{template, DatasetId};
    use nilm_models::detector::{build_from_spec, BackboneSpec};
    use nilm_serve::gateway::{Gateway, GatewayConfig};
    use nilm_serve::http::read_response;
    use nilm_serve::protocol::{localize_request, localize_response, Detail, HouseholdRow};
    use nilm_tensor::dispatch::{set_forced_backend, Backend};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::io::{BufReader, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    const WINDOW: usize = 32;

    /// Untrained-but-deterministic model: same seed → identical weights, so
    /// each serving surface gets its own equal copy. Deliberately
    /// heterogeneous — two ResNets plus a TransApp — so the invariance check
    /// also covers the attention GEMMs (QKᵀ, attention-weighted V, and the
    /// feed-forward projections).
    fn model(seed: u64) -> CamalModel {
        let specs = [
            BackboneSpec::ResNet { kernel: 5, width_div: 16 },
            BackboneSpec::ResNet { kernel: 9, width_div: 16 },
            BackboneSpec::TransApp { d_model: 16, heads: 2, d_ff: 32, layers: 1, downsample: 4 },
        ];
        let cfg = CamalConfig {
            n_ensemble: specs.len(),
            kernels: vec![5, 9],
            candidates: vec![specs[2]],
            trials: 1,
            width_div: 16,
            ..CamalConfig::default()
        };
        let members = specs
            .iter()
            .enumerate()
            .map(|(i, &spec)| {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
                EnsembleMember {
                    net: build_from_spec(&mut rng, spec),
                    spec,
                    val_loss: 0.5 + i as f32,
                }
            })
            .collect();
        let mut m = CamalModel::from_members(cfg, members);
        m.set_window(WINDOW);
        m
    }

    fn household(n_windows: usize, seed: u64) -> HouseholdSeries {
        let mut rng = nilm_tensor::init::rng(seed);
        let n = n_windows * WINDOW + 3;
        let values = (0..n)
            .map(|t| {
                let base = if (t / 10) % 3 == 0 { 2100.0 } else { 130.0 };
                base + nilm_tensor::init::randn(&mut rng).abs() * 20.0
            })
            .collect();
        HouseholdSeries { id: format!("house-{seed}"), series: TimeSeries::new(values, 60) }
    }

    // Restores autotuned dispatch even if an assertion below panics.
    struct RestoreBackend;
    impl Drop for RestoreBackend {
        fn drop(&mut self) {
            set_forced_backend(None);
        }
    }
    let _restore = RestoreBackend;

    let key = ModelKey::new(DatasetId::Refit, ApplianceKind::Kettle);
    let keys = [key];
    let households = vec![household(4, 42), household(3, 7)];
    let tmpl = template(key.dataset);
    let avg = tmpl.case(key.appliance).map(|c| c.avg_power_w).unwrap_or(1000.0);

    let mut stream_model = model(1);
    let stream_cfg = StreamConfig {
        window: WINDOW,
        step_s: tmpl.step_s,
        max_ffill_s: 3 * tmpl.step_s,
        batch: 16,
        appliance: Some(key.appliance),
        avg_power_w: avg,
    };

    let mut fleet_registry = ModelRegistry::unbounded();
    fleet_registry.insert(key, model(1));
    let fleet_cfg = FleetConfig::at_step(tmpl.step_s);

    let mut gateway_registry = ModelRegistry::unbounded();
    gateway_registry.insert(key, model(1));
    let gateway = Gateway::start(
        gateway_registry,
        GatewayConfig { read_timeout: Duration::from_secs(5), ..GatewayConfig::default() },
    )
    .expect("gateway starts");
    let addr = gateway.addr().to_string();
    let request_body = localize_request(&keys, &households, Detail::Full).to_compact();

    let mut backends = vec![Backend::Naive, Backend::Gemm];
    if nilm_tensor::simd::simd_exact() {
        backends.push(Backend::Simd);
    }

    let mut per_backend: Vec<(String, String, String)> = Vec::new();
    for &backend in &backends {
        set_forced_backend(Some(backend));

        let timelines = serve(&mut stream_model, &households, &stream_cfg);
        let rows: Vec<HouseholdRow> = households
            .iter()
            .enumerate()
            .map(|(hi, hh)| HouseholdRow {
                id: &hh.id,
                degraded: None,
                timelines: vec![&timelines[hi]],
            })
            .collect();
        let stream_body = localize_response(&keys, &rows, Detail::Full).to_compact();

        let result =
            serve_fleet(&mut fleet_registry, &keys, &households, &fleet_cfg).expect("fleet pass");
        let rows: Vec<HouseholdRow> = households
            .iter()
            .enumerate()
            .map(|(hi, hh)| HouseholdRow {
                id: &hh.id,
                degraded: None,
                timelines: vec![result.timeline(hi, key).expect("timeline")],
            })
            .collect();
        let fleet_body = localize_response(&keys, &rows, Detail::Full).to_compact();

        let stream = TcpStream::connect(&addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let request = format!(
            "POST /v1/localize HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{request_body}",
            request_body.len()
        );
        (&stream).write_all(request.as_bytes()).expect("send");
        let mut reader = BufReader::new(&stream);
        let response = read_response(&mut reader).expect("response");
        assert_eq!(response.status, 200, "{backend:?}");
        let gateway_body = response.body_str().expect("UTF-8 body").to_string();

        per_backend.push((stream_body, fleet_body, gateway_body));
    }
    set_forced_backend(None);
    gateway.shutdown();

    let (s0, f0, g0) = &per_backend[0];
    assert!(s0.contains("\"status\""), "stream response looks empty: {s0}");
    for (i, (s, f, g)) in per_backend.iter().enumerate() {
        let b = backends[i];
        assert_eq!(s, s0, "stream::serve diverged on {b:?} vs {:?}", backends[0]);
        assert_eq!(f, f0, "serve_fleet diverged on {b:?} vs {:?}", backends[0]);
        assert_eq!(g, g0, "gateway diverged on {b:?} vs {:?}", backends[0]);
    }
}

#[test]
fn possession_only_training_works_end_to_end() {
    let scale = ScaleOverride {
        submetered_houses: Some(4),
        possession_only_houses: Some(12),
        days_per_house: Some(3),
    };
    let ds = generate_dataset(&ideal(), scale, 8);
    let case = prepare_possession_case(&ds, ApplianceKind::Shower, 64, &SplitConfig::default());
    assert!(case.train.positives() > 0, "need positive survey houses");
    assert!(case.train.positives() < case.train.len(), "need negative survey houses");
    let mut model = CamalModel::train(&fast_cfg(), &case.train, &case.val, 4);
    let report = model.evaluate(&case.test, 8000.0, 16);
    assert!(report.localization.f1.is_finite());
    assert!(report.detection.balanced_accuracy >= 0.4);
}
