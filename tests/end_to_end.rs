//! Cross-crate integration tests: simulator → preprocessing → CamAL →
//! metrics, exercised end to end at smoke scale.

use camal::{CamalConfig, CamalModel};
use nilm_data::prelude::*;
use nilm_models::TrainConfig;

fn fast_cfg() -> CamalConfig {
    CamalConfig {
        n_ensemble: 2,
        kernels: vec![5, 9],
        trials: 1,
        width_div: 16,
        train: TrainConfig { epochs: 6, batch_size: 16, lr: 2e-3, clip: 0.0, seed: 1 },
        ..CamalConfig::default()
    }
}

fn small_dataset(seed: u64) -> Dataset {
    let scale =
        ScaleOverride { submetered_houses: Some(6), days_per_house: Some(3), ..Default::default() };
    generate_dataset(&refit(), scale, seed)
}

#[test]
fn camal_beats_trivial_baselines_on_simulated_refit() {
    let ds = small_dataset(99);
    let case = prepare_case(&ds, ApplianceKind::Kettle, 128, &SplitConfig::default());
    let mut model = CamalModel::train(&fast_cfg(), &case.train, &case.val, 4);
    let report = model.evaluate(&case.test, 2000.0, 16);

    // Trivial baselines computed on the same test windows.
    let mut all_on = nilm_metrics::Confusion::default();
    let mut all_off = nilm_metrics::Confusion::default();
    for w in &case.test.windows {
        for &t in &w.status {
            all_on.push(true, t != 0);
            all_off.push(false, t != 0);
        }
    }
    assert!(
        report.localization.f1 > all_on.f1(),
        "CamAL F1 {:.3} must beat always-ON {:.3}",
        report.localization.f1,
        all_on.f1()
    );
    assert!(report.detection.balanced_accuracy > 0.6);
}

#[test]
fn pipeline_is_deterministic_given_seeds() {
    let ds = small_dataset(5);
    let case = prepare_case(&ds, ApplianceKind::Kettle, 128, &SplitConfig::default());
    let cfg = fast_cfg();
    let mut m1 = CamalModel::train(&cfg, &case.train, &case.val, 1);
    let mut m2 = CamalModel::train(&cfg, &case.train, &case.val, 1);
    let r1 = m1.evaluate(&case.test, 2000.0, 16);
    let r2 = m2.evaluate(&case.test, 2000.0, 16);
    assert_eq!(r1.localization.f1, r2.localization.f1);
    assert_eq!(r1.energy.mae, r2.energy.mae);
}

#[test]
fn power_estimates_never_exceed_aggregate() {
    let ds = small_dataset(17);
    let case = prepare_case(&ds, ApplianceKind::Dishwasher, 128, &SplitConfig::default());
    let mut model = CamalModel::train(&fast_cfg(), &case.train, &case.val, 4);
    let loc = model.localize_set(&case.test, 16);
    for (i, w) in case.test.windows.iter().enumerate() {
        let est = camal::estimate_power(&loc.status[i], 800.0, &w.aggregate_w);
        for (p, x) in est.iter().zip(&w.aggregate_w) {
            assert!(*p <= x.max(0.0) + 1e-3, "estimate {p} exceeds aggregate {x}");
        }
    }
}

#[test]
fn weak_labels_are_consistent_with_strong_labels() {
    let ds = small_dataset(31);
    for kind in [ApplianceKind::Kettle, ApplianceKind::Dishwasher] {
        let case = prepare_case(&ds, kind, 128, &SplitConfig::default());
        for split in [&case.train, &case.val, &case.test] {
            for w in &split.windows {
                let any_on = w.status.iter().any(|&s| s == 1);
                assert_eq!(any_on, w.weak_label == 1, "weak label inconsistent");
            }
        }
    }
}

#[test]
fn soft_label_round_trip_trains_a_baseline() {
    use nilm_eval::runner::evaluate_frame_model;
    use nilm_models::baselines::BaselineKind;
    use nilm_models::train_soft;

    let ds = small_dataset(43);
    let case = prepare_case(&ds, ApplianceKind::Kettle, 128, &SplitConfig::default());
    let mut camal_model = CamalModel::train(&fast_cfg(), &case.train, &case.val, 4);
    let soft = camal_model.soft_labels(&case.train, 16);
    assert_eq!(soft.len(), case.train.len());

    let mut rng = nilm_tensor::init::rng(3);
    let mut baseline = BaselineKind::TpNilm.build(&mut rng, 16);
    let cfg = TrainConfig { epochs: 2, ..Default::default() };
    let stats = train_soft(baseline.as_mut(), &case.train, &soft, &cfg);
    assert!(stats.final_loss().is_finite());
    let report = evaluate_frame_model(baseline.as_mut(), &case.test, 2000.0);
    assert!(report.localization.f1.is_finite());
}

#[test]
fn possession_only_training_works_end_to_end() {
    let scale = ScaleOverride {
        submetered_houses: Some(4),
        possession_only_houses: Some(12),
        days_per_house: Some(3),
    };
    let ds = generate_dataset(&ideal(), scale, 8);
    let case = prepare_possession_case(&ds, ApplianceKind::Shower, 64, &SplitConfig::default());
    assert!(case.train.positives() > 0, "need positive survey houses");
    assert!(case.train.positives() < case.train.len(), "need negative survey houses");
    let mut model = CamalModel::train(&fast_cfg(), &case.train, &case.val, 4);
    let report = model.evaluate(&case.test, 8000.0, 16);
    assert!(report.localization.f1.is_finite());
    assert!(report.detection.balanced_accuracy >= 0.4);
}
