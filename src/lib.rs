//! Umbrella crate re-exporting the CamAL reproduction workspace.
//!
//! Reproduces *"Few Labels are All you Need: A Weakly Supervised Framework
//! for Appliance Localization in Smart-Meter Series"* (Petralia et al.,
//! ICDE 2025). See `README.md` for the pipeline overview and
//! `ARCHITECTURE.md` for the crate-by-crate map to the paper.
//!
//! Each member crate is re-exported under its workspace name so downstream
//! users can depend on `camal-repro` alone:
//!
//! ```
//! use camal_repro::camal::CamalConfig;
//!
//! let config = CamalConfig::default();
//! assert!(config.n_ensemble >= 1);
//! ```

pub use camal;
pub use nilm_data;
pub use nilm_eval;
pub use nilm_fault;
pub use nilm_json;
pub use nilm_metrics;
pub use nilm_models;
pub use nilm_obs;
pub use nilm_serve;
pub use nilm_tensor;
