//! Umbrella crate re-exporting the CamAL reproduction workspace.
